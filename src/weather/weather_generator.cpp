#include "weather/weather_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace verihvac::weather {
namespace {

constexpr double kStepHours = 0.25;

/// One Ornstein-Uhlenbeck step: x' = x + theta*(mu - x)*dt + sigma_eq*sqrt(...)dW.
/// Parameterized by the equilibrium standard deviation so profiles specify
/// intuitive quantities.
double ou_step(double x, double mu, double sigma_eq, double tau_hours, double dt_hours,
               Rng& rng) {
  const double theta = 1.0 / tau_hours;
  // Exact discretization of the OU process keeps stationarity for any dt.
  const double decay = std::exp(-theta * dt_hours);
  const double stationary_noise = sigma_eq * std::sqrt(1.0 - decay * decay);
  return mu + (x - mu) * decay + stationary_noise * rng.normal();
}

}  // namespace

WeatherGenerator::WeatherGenerator(ClimateProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

std::pair<double, double> WeatherGenerator::daylight_hours(const ClimateProfile& profile) {
  // January photoperiod shrinks with latitude; a simple linear model is
  // adequate (Tucson ~10.2 h, Pittsburgh ~9.4 h).
  const double photoperiod = 12.0 - 0.065 * profile.latitude_deg;
  const double sunrise = 12.0 - photoperiod / 2.0;
  const double sunset = 12.0 + photoperiod / 2.0;
  return {sunrise, sunset};
}

WeatherSeries WeatherGenerator::generate(int start_day, std::size_t num_steps) {
  WeatherSeries series;
  series.profile = profile_;
  series.seed = seed_;
  series.start_day = start_day;
  series.records.reserve(num_steps);

  Rng rng(seed_ ^ (0x5bd1e995u + static_cast<std::uint64_t>(start_day) * 0x9E3779B9ull));

  // Initialize the latent processes at their stationary means.
  double synoptic = 0.0;
  double rh_noise = 0.0;
  double wind = profile_.mean_wind;
  double cloud = profile_.mean_cloud_cover;

  const auto [sunrise, sunset] = daylight_hours(profile_);

  for (std::size_t step = 0; step < num_steps; ++step) {
    const double hour_of_day =
        std::fmod(static_cast<double>(start_day) * 24.0 + static_cast<double>(step) * kStepHours,
                  24.0);

    synoptic = ou_step(synoptic, 0.0, profile_.synoptic_sigma_c,
                       profile_.synoptic_tau_hours, kStepHours, rng);
    rh_noise = ou_step(rh_noise, 0.0, profile_.rh_sigma, 12.0, kStepHours, rng);
    wind = ou_step(wind, profile_.mean_wind, profile_.wind_sigma, profile_.wind_tau_hours,
                   kStepHours, rng);
    cloud = ou_step(cloud, profile_.mean_cloud_cover, profile_.cloud_sigma,
                    profile_.cloud_tau_hours, kStepHours, rng);
    const double cloud_clamped = std::clamp(cloud, 0.0, 1.0);

    // Diurnal harmonic: minimum just before sunrise (~6h), maximum mid-afternoon.
    const double phase = 2.0 * std::numbers::pi * (hour_of_day - 15.0) / 24.0;
    const double diurnal = profile_.diurnal_amp_c * std::cos(phase);

    WeatherRecord rec;
    rec.outdoor_temp_c = profile_.mean_temp_c + diurnal + synoptic;
    rec.humidity_pct = std::clamp(
        profile_.mean_rh + profile_.rh_temp_coupling * synoptic + rh_noise, 5.0, 100.0);
    rec.wind_mps = std::abs(wind);

    if (hour_of_day > sunrise && hour_of_day < sunset) {
      const double day_frac = (hour_of_day - sunrise) / (sunset - sunrise);
      const double clear_sky =
          profile_.clear_sky_peak * std::sin(std::numbers::pi * day_frac);
      rec.solar_wm2 = std::max(0.0, clear_sky * (1.0 - 0.75 * cloud_clamped));
    } else {
      rec.solar_wm2 = 0.0;
    }
    series.records.push_back(rec);
  }
  return series;
}

WeatherSeries WeatherGenerator::generate_days(int num_days) {
  return generate(0, static_cast<std::size_t>(num_days) * kStepsPerDay);
}

}  // namespace verihvac::weather
