#include "weather/climate.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::weather {

std::string to_string(ClimateZone zone) {
  switch (zone) {
    case ClimateZone::k2B: return "2B";
    case ClimateZone::k4A: return "4A";
  }
  return "?";
}

ClimateProfile pittsburgh() {
  ClimateProfile p;
  p.name = "Pittsburgh";
  p.zone = ClimateZone::k4A;
  p.latitude_deg = 40.4;
  p.mean_temp_c = -1.5;       // January normal ~ -1.7 degC
  p.diurnal_amp_c = 3.8;
  p.synoptic_sigma_c = 4.5;   // frequent fronts
  p.synoptic_tau_hours = 36.0;
  p.mean_rh = 70.0;
  p.rh_sigma = 10.0;
  p.rh_temp_coupling = -1.2;
  p.mean_wind = 4.2;
  p.wind_sigma = 1.9;
  p.clear_sky_peak = 420.0;
  p.mean_cloud_cover = 0.68;  // famously overcast winters
  p.cloud_sigma = 0.22;
  return p;
}

ClimateProfile tucson() {
  ClimateProfile p;
  p.name = "Tucson";
  p.zone = ClimateZone::k2B;
  p.latitude_deg = 32.2;
  p.mean_temp_c = 11.0;       // January normal ~ 11 degC
  p.diurnal_amp_c = 8.0;      // large desert diurnal swing
  p.synoptic_sigma_c = 2.5;
  p.synoptic_tau_hours = 48.0;
  p.mean_rh = 45.0;
  p.rh_sigma = 14.0;
  p.rh_temp_coupling = -2.0;
  p.mean_wind = 3.0;
  p.wind_sigma = 1.5;
  p.clear_sky_peak = 620.0;
  p.mean_cloud_cover = 0.25;  // mostly clear
  p.cloud_sigma = 0.20;
  return p;
}

ClimateProfile new_york() {
  ClimateProfile p;
  p.name = "NewYork";
  p.zone = ClimateZone::k4A;
  p.latitude_deg = 40.7;
  p.mean_temp_c = 0.5;        // slightly milder than Pittsburgh
  p.diurnal_amp_c = 3.5;
  p.synoptic_sigma_c = 4.2;
  p.synoptic_tau_hours = 36.0;
  p.mean_rh = 64.0;
  p.rh_sigma = 11.0;
  p.rh_temp_coupling = -1.2;
  p.mean_wind = 4.8;          // coastal
  p.wind_sigma = 2.1;
  p.clear_sky_peak = 430.0;
  p.mean_cloud_cover = 0.60;
  p.cloud_sigma = 0.22;
  return p;
}

ClimateProfile tucson_july() {
  ClimateProfile p;
  p.name = "TucsonJuly";
  p.zone = ClimateZone::k2B;
  p.latitude_deg = 32.2;
  p.mean_temp_c = 31.0;       // July normal ~ 31 degC (monsoon season)
  p.diurnal_amp_c = 7.0;
  p.synoptic_sigma_c = 2.0;   // summer highs are persistent
  p.synoptic_tau_hours = 60.0;
  p.mean_rh = 38.0;           // monsoon moisture, still arid
  p.rh_sigma = 15.0;
  p.rh_temp_coupling = -1.5;
  p.mean_wind = 3.2;
  p.wind_sigma = 1.6;
  p.clear_sky_peak = 1000.0;  // high-sun season
  p.mean_cloud_cover = 0.30;  // afternoon monsoon build-ups
  p.cloud_sigma = 0.25;
  return p;
}

ClimateProfile profile_by_name(const std::string& name) {
  std::string lowered = name;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "pittsburgh") return pittsburgh();
  if (lowered == "tucson") return tucson();
  if (lowered == "tucsonjuly" || lowered == "tucson_july") return tucson_july();
  if (lowered == "newyork" || lowered == "new_york" || lowered == "new york") {
    return new_york();
  }
  throw std::invalid_argument("unknown climate profile: " + name);
}

std::vector<std::string> available_profiles() {
  return {"Pittsburgh", "Tucson", "NewYork", "TucsonJuly"};
}

}  // namespace verihvac::weather
