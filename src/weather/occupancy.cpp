#include "weather/occupancy.hpp"

#include <cmath>

#include "common/units.hpp"

namespace verihvac::weather {

double OccupancySchedule::occupants_at(std::size_t step) const {
  const std::size_t day = step / kStepsPerDay;
  const double hour =
      static_cast<double>(step % kStepsPerDay) / static_cast<double>(kStepsPerHour);
  const int weekday = (first_weekday + static_cast<int>(day)) % 7;
  const bool weekend = weekday >= 5;

  if (hour < start_hour || hour >= end_hour) return 0.0;
  if (weekend) return peak_occupants * weekend_fraction;

  // Optional soft ramp at the edges of the business day; the default
  // (ramp_hours = 0) is the stepwise Sinergym schedule.
  double fraction = 1.0;
  if (ramp_hours > 0.0) {
    if (hour < start_hour + ramp_hours) {
      fraction = (hour - start_hour) / ramp_hours;
    } else if (hour > end_hour - ramp_hours) {
      fraction = (end_hour - hour) / ramp_hours;
    }
  }
  return std::round(peak_occupants * fraction);
}

std::vector<double> OccupancySchedule::series(std::size_t num_steps) const {
  std::vector<double> out;
  out.reserve(num_steps);
  for (std::size_t step = 0; step < num_steps; ++step) out.push_back(occupants_at(step));
  return out;
}

OccupancySchedule office_schedule() { return OccupancySchedule{}; }

}  // namespace verihvac::weather
