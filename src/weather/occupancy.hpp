// Occupancy schedules.
//
// The fifth disturbance variable of Table 1 is "Zone People Occupant
// Count". The paper's 5-zone office building follows the standard Sinergym
// office schedule: occupied on weekdays during business hours, empty
// otherwise. The schedule matters twice: it enters the dynamics-model input
// and it switches the reward weight w_e (energy-dominant when unoccupied,
// comfort-dominant when occupied).
#pragma once

#include <cstddef>
#include <vector>

namespace verihvac::weather {

struct OccupancySchedule {
  /// Peak occupant count for the controlled zone.
  double peak_occupants = 11.0;
  /// Occupied window on weekdays [hours, 24h clock).
  double start_hour = 8.0;
  double end_hour = 20.0;
  /// Fraction of peak present on weekends (cleaning/security staff).
  double weekend_fraction = 0.0;
  /// Arrival/departure ramp width [hours]. 0 (default) is the stepwise
  /// Sinergym 5Zone schedule: everyone present from start to end. A
  /// nonzero width spreads arrivals/departures linearly across it.
  double ramp_hours = 0.0;
  /// Day-of-week of day 0 (0 = Monday). January 1st 2021 was a Friday (4).
  int first_weekday = 4;

  /// Occupant count at a 15-minute step index from the schedule origin.
  double occupants_at(std::size_t step) const;
  /// True when the zone counts as "occupied" for the reward weighting.
  bool occupied_at(std::size_t step) const { return occupants_at(step) > 0.5; }

  /// Generates the whole series of length `num_steps`.
  std::vector<double> series(std::size_t num_steps) const;
};

/// The schedule used by all experiments (matches the Sinergym 5Zone default:
/// weekdays 8:00-20:00, 11 occupants in the controlled zone).
OccupancySchedule office_schedule();

}  // namespace verihvac::weather
