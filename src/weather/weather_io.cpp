#include "weather/weather_io.hpp"

#include "common/csv.hpp"

namespace verihvac::weather {

void save_series_csv(const WeatherSeries& series, const std::string& path) {
  CsvWriter writer(path);
  writer.write_header({"step", "outdoor_temp_c", "humidity_pct", "wind_mps", "solar_wm2"});
  for (std::size_t i = 0; i < series.records.size(); ++i) {
    const auto& r = series.records[i];
    writer.write_row({static_cast<double>(i), r.outdoor_temp_c, r.humidity_pct, r.wind_mps,
                      r.solar_wm2});
  }
  writer.flush();
}

WeatherSeries load_series_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  WeatherSeries series;
  const auto temp = table.numeric_column("outdoor_temp_c");
  const auto rh = table.numeric_column("humidity_pct");
  const auto wind = table.numeric_column("wind_mps");
  const auto solar = table.numeric_column("solar_wm2");
  series.records.resize(temp.size());
  for (std::size_t i = 0; i < temp.size(); ++i) {
    series.records[i] = WeatherRecord{temp[i], rh[i], wind[i], solar[i]};
  }
  return series;
}

}  // namespace verihvac::weather
