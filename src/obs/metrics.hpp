// Process-wide metrics: wait-free sharded counters, gauges and
// log-bucketed histograms behind a named registry.
//
// The capture discipline is the same one the PR-5 telemetry rings proved:
// the hot path only ever touches per-thread cache-line-padded cells with
// relaxed atomics (no locks, no allocation, no clock reads), and readers
// pay the aggregation cost at snapshot time. Instruments therefore never
// perturb decisions — they observe values the decision path already
// computed — and the whole layer stays inside the <2% overhead budget
// gated by bench/obs_overhead.
//
// Registry lookups (name -> instrument) take a mutex and are meant for
// construction time: resolve `Counter*` / `Histogram*` handles once and
// keep them; the handles stay valid for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace verihvac::obs {

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// Independent write shards per instrument; threads hash onto a shard so
/// concurrent increments do not contend on one cache line.
inline constexpr std::size_t kMetricShards = 16;

/// Log2 buckets per histogram. Bucket i holds values in
/// (upper_bound(i-1), upper_bound(i)] with upper_bound(i) = 1e-9 * 2^i;
/// bucket 0 also absorbs everything <= 1e-9 and the last bucket absorbs
/// the overflow tail. Seconds-valued samples span 1ns .. ~150 years.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Upper bound (inclusive) of histogram bucket `bucket`.
double histogram_bucket_upper_bound(std::size_t bucket);

/// Index of the bucket a sample lands in (binary search over the bounds,
/// exactly consistent with histogram_bucket_upper_bound).
std::size_t histogram_bucket_for(double value);

namespace detail {

/// Stable per-thread shard slot in [0, kMetricShards).
std::size_t metric_shard_slot();

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) HistogramCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

}  // namespace detail

/// Monotonic counter. add() is wait-free; value() folds the shards.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[detail::metric_shard_slot()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::CounterCell, kMetricShards> cells_{};
};

/// Last-write-wins gauge (single cell: gauges record a level, not a rate,
/// so sharded accumulation would be meaningless).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram with per-thread sharded cells.
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Per-bucket (non-cumulative) sample counts.
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Estimated q-quantile (q in [0,1]): linear interpolation inside the
    /// bucket holding the target rank. Exact to within one bucket width.
    double quantile(double q) const;
  };

  /// Wait-free; non-finite samples are dropped (they carry no latency
  /// information and would poison `sum`).
  void observe(double value) noexcept;

  Snapshot snapshot() const noexcept;

 private:
  std::array<detail::HistogramCell, kMetricShards> cells_{};
};

struct InstrumentInfo {
  std::string name;
  InstrumentKind kind;
  std::string help;
};

/// Named instrument registry. get-or-create by name; re-registering an
/// existing name with a different kind throws std::invalid_argument.
/// Instances are independent (tests use local registries); production code
/// goes through global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  /// Registered instruments, name-ordered.
  std::vector<InstrumentInfo> instruments() const;

  /// Prometheus-style text exposition (name-ordered, deterministic).
  std::string expose_text() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string expose_json() const;

  /// Process-wide registry. First use also installs the runtime hooks
  /// that feed log/task-pool activity into obs instruments.
  static MetricsRegistry& global();

 private:
  struct Entry {
    InstrumentInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, InstrumentKind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace verihvac::obs
