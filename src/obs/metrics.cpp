#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace verihvac::obs {
namespace {

constexpr double kHistogramBase = 1e-9;

const std::array<double, kHistogramBuckets>& bucket_bounds() {
  static const std::array<double, kHistogramBuckets> bounds = [] {
    std::array<double, kHistogramBuckets> out{};
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      out[i] = std::ldexp(kHistogramBase, static_cast<int>(i));
    }
    return out;
  }();
  return bounds;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

const char* kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

double histogram_bucket_upper_bound(std::size_t bucket) {
  return bucket_bounds()[std::min(bucket, kHistogramBuckets - 1)];
}

std::size_t histogram_bucket_for(double value) {
  const auto& bounds = bucket_bounds();
  // First bucket whose (inclusive) upper bound admits the sample; the last
  // bucket absorbs the overflow tail.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  if (it == bounds.end()) return kHistogramBuckets - 1;
  return static_cast<std::size_t>(it - bounds.begin());
}

namespace detail {

std::size_t metric_shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % kMetricShards;
}

}  // namespace detail

void Histogram::observe(double value) noexcept {
  if (!std::isfinite(value)) return;
  detail::HistogramCell& cell = cells_[detail::metric_shard_slot()];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  cell.buckets[histogram_bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  for (const auto& cell : cells_) {
    out.count += cell.count.load(std::memory_order_relaxed);
    out.sum += cell.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; walk buckets until the cumulative count
  // reaches it, then interpolate linearly inside that bucket.
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = b == 0 ? 0.0 : histogram_bucket_upper_bound(b - 1);
    const double upper = histogram_bucket_upper_bound(b);
    const double fraction = (rank - before) / static_cast<double>(buckets[b]);
    return lower + fraction * (upper - lower);
  }
  return histogram_bucket_upper_bound(kHistogramBuckets - 1);
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name, InstrumentKind kind,
                                               const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.info = {name, kind, help};
    switch (kind) {
      case InstrumentKind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case InstrumentKind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case InstrumentKind::kHistogram: entry.histogram = std::make_unique<Histogram>(); break;
    }
  } else if (entry.info.kind != kind) {
    throw std::invalid_argument("metric '" + name + "' already registered as " +
                                kind_name(entry.info.kind) + ", requested " + kind_name(kind));
  }
  if (entry.info.help.empty() && !help.empty()) entry.info.help = help;
  return entry;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *entry(name, InstrumentKind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *entry(name, InstrumentKind::kGauge, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *entry(name, InstrumentKind::kHistogram, help).histogram;
}

std::vector<InstrumentInfo> MetricsRegistry::instruments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<InstrumentInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

std::string MetricsRegistry::expose_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    if (!entry.info.help.empty()) os << "# HELP " << name << " " << entry.info.help << "\n";
    os << "# TYPE " << name << " " << kind_name(entry.info.kind) << "\n";
    switch (entry.info.kind) {
      case InstrumentKind::kCounter: os << name << " " << entry.counter->value() << "\n"; break;
      case InstrumentKind::kGauge:
        os << name << " " << format_double(entry.gauge->value()) << "\n";
        break;
      case InstrumentKind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          if (snap.buckets[b] == 0) continue;
          cumulative += snap.buckets[b];
          os << name << "_bucket{le=\"" << format_double(histogram_bucket_upper_bound(b))
             << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
        os << name << "_sum " << format_double(snap.sum) << "\n";
        os << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::expose_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const auto& [name, entry] : entries_) {
    switch (entry.info.kind) {
      case InstrumentKind::kCounter:
        counters << (first_counter ? "" : ",") << "\"" << name << "\":" << entry.counter->value();
        first_counter = false;
        break;
      case InstrumentKind::kGauge:
        gauges << (first_gauge ? "" : ",") << "\"" << name
               << "\":" << format_double(entry.gauge->value());
        first_gauge = false;
        break;
      case InstrumentKind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        histograms << (first_histogram ? "" : ",") << "\"" << name << "\":{\"count\":" << snap.count
                   << ",\"sum\":" << format_double(snap.sum) << ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          if (snap.buckets[b] == 0) continue;
          histograms << (first_bucket ? "" : ",") << "["
                     << format_double(histogram_bucket_upper_bound(b)) << ","
                     << snap.buckets[b] << "]";
          first_bucket = false;
        }
        histograms << "]}";
        first_histogram = false;
        break;
      }
    }
  }
  std::ostringstream os;
  os << "{\"counters\":{" << counters.str() << "},\"gauges\":{" << gauges.str()
     << "},\"histograms\":{" << histograms.str() << "}}";
  return os.str();
}

}  // namespace verihvac::obs
