// The instrument catalog: every well-known metric the stack publishes,
// with type, meaning and alert guidance.
//
// This table is the single source of truth for observability surface:
//   * production code resolves handles through obs::counter/gauge/
//     histogram(name), which REQUIRES the name to be cataloged (a typo
//     throws at construction instead of silently minting an orphan);
//   * docs/OPERATIONS.md's monitoring table is generated from it, and
//     tools/check_metrics_docs.py fails CI when they diverge;
//   * `verihvac_cli stats` registers the whole catalog so an exposition
//     dump lists every instrument even before traffic touches it.
#pragma once

#include "obs/metrics.hpp"

namespace verihvac::obs {

struct InstrumentSpec {
  const char* name;
  InstrumentKind kind;
  /// One-line meaning (doubles as the exposition HELP text).
  const char* help;
  /// What an operator should do when this instrument misbehaves.
  const char* alert;
};

/// Every cataloged instrument, grouped by subsystem. check_metrics_docs.py
/// parses the definition in instruments.cpp, so entries must stay literal.
const std::vector<InstrumentSpec>& instrument_catalog();

/// Catalog lookup (nullptr when `name` is not cataloged).
const InstrumentSpec* find_instrument(const std::string& name);

/// Resolve a cataloged instrument in the global registry (get-or-create
/// with the catalog help). Throws std::invalid_argument for names missing
/// from the catalog or cataloged under a different kind — instrument
/// typos fail loudly at handle-resolution time, not silently at scrape
/// time.
Counter& counter(const char* name);
Gauge& gauge(const char* name);
Histogram& histogram(const char* name);

/// Registers every cataloged instrument in the global registry (idempotent)
/// so expositions list the full surface with zero values.
void register_catalog();

/// Stamps the process-identity gauges: `build_info` (a constant build
/// fingerprint) and `process_uptime_seconds` (sampled now, relative to the
/// registry's construction). Call right before writing an exposition so a
/// snapshot is attributable to a binary and a process lifetime;
/// register_catalog() also calls it once.
void publish_process_info();

namespace detail {
/// Installs the logging / task-pool hooks that feed common-layer activity
/// (log_warn_total, taskpool_*) into `registry`. Called once from
/// MetricsRegistry::global(); must not call global() itself.
void install_runtime_hooks(MetricsRegistry& registry);
}  // namespace detail

}  // namespace verihvac::obs
