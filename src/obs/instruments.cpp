#include "obs/instruments.hpp"

#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/task_pool.hpp"
#include "obs/trace.hpp"

namespace verihvac::obs {

// clang-format off
const std::vector<InstrumentSpec>& instrument_catalog() {
  static const std::vector<InstrumentSpec> catalog = {
      // --- serve: micro-batching request scheduler ---
      {"serve_dt_served_total", InstrumentKind::kCounter,
       "DT fast-path decisions served inline",
       "a sustained rate drop while sessions are admitted means the fast path is starving"},
      {"serve_mbrl_served_total", InstrumentKind::kCounter,
       "MBRL fallback decisions served",
       "a rising share vs DT means bundles are being bypassed - check promotion health"},
      {"serve_batches_total", InstrumentKind::kCounter,
       "cross-session MBRL micro-batches solved",
       "flat while serve_mbrl_served_total grows means batching degraded to singletons"},
      {"serve_batched_requests_total", InstrumentKind::kCounter,
       "MBRL requests that rode a coalesced batch",
       "divide by serve_batches_total for mean batch size; near 1 wastes the batch pipeline"},
      {"serve_deadline_closes_total", InstrumentKind::kCounter,
       "batches closed by a latency budget instead of window/size",
       "near-zero under SLO traffic means budgets are too loose to shape batching"},
      {"serve_queue_depth", InstrumentKind::kGauge,
       "queued MBRL requests across all shards (sampled at batch close)",
       "pinned near queue_capacity means admission back-pressure - add shards or capacity"},
      {"serve_shard_queue_depth", InstrumentKind::kHistogram,
       "per-shard queue depth sampled at each batch close",
       "a heavy tail on one deployment means shard-skewed sessions - check the id mapping"},
      {"serve_batch_size", InstrumentKind::kHistogram,
       "requests per solved micro-batch",
       "p50 of 1 under load means the coalescing window closes too early"},
      {"serve_deadline_slack_seconds", InstrumentKind::kHistogram,
       "time left to the earliest deadline when a deadline-driven batch closed",
       "mass near zero means deadline_margin is too thin for the observed solve time"},
      {"serve_dt_latency_seconds", InstrumentKind::kHistogram,
       "sampled DT fast-path decision latency",
       "p99 above a few microseconds means the fast path picked up contention"},
      {"serve_mbrl_solve_seconds", InstrumentKind::kHistogram,
       "wall time of one cross-session batch solve",
       "creeping p99 eats deadline_margin and turns into deadline misses"},
      // --- common: shared task pool ---
      {"taskpool_batches_total", InstrumentKind::kCounter,
       "parallel_for fan-outs executed on the shared pool",
       "none"},
      {"taskpool_items_total", InstrumentKind::kCounter,
       "index items processed across all fan-outs",
       "none"},
      {"taskpool_batch_seconds", InstrumentKind::kHistogram,
       "wall time of one parallel_for fan-out",
       "a fattening tail means rollout/verification work is contending for the pool"},
      {"taskpool_active_jobs", InstrumentKind::kGauge,
       "parallel_for invocations currently in flight (callers serialize)",
       "persistently above 1 means clients are queueing on the shared pool"},
      // --- adapt: telemetry capture ---
      {"telemetry_records_total", InstrumentKind::kCounter,
       "decision records published into the telemetry rings",
       "flat while serving means the tap is not installed"},
      {"telemetry_lost_total", InstrumentKind::kCounter,
       "records lost to ring laps or torn slots",
       "nonzero means the pump drains too slowly or rings are undersized - lost data biases adaptation"},
      {"telemetry_overwritten_total", InstrumentKind::kCounter,
       "lost records that were lap-overwrites (the bulk-skip share of telemetry_lost_total)",
       "dominating telemetry_lost_total means the consumer is slow, not that writers are tearing"},
      {"telemetry_sampling_skips_total", InstrumentKind::kCounter,
       "DT decisions the deterministic sampler chose not to record",
       "none - expected (period-1)/period of DT traffic when dt_sample_period > 1"},
      // --- adapt: durable telemetry store ---
      {"telemetry_store_records_persisted_total", InstrumentKind::kCounter,
       "records appended to on-disk segments",
       "flat while telemetry_records_total grows means the writer thread stalled"},
      {"telemetry_store_records_dropped_total", InstrumentKind::kCounter,
       "records dropped by compaction eviction, retention deletion or crash-recovery trim",
       "a spike without matching evictions/retention means segments are being truncated - check disk"},
      {"telemetry_store_bytes_written_total", InstrumentKind::kCounter,
       "segment payload bytes written (headers excluded)",
       "multiply by retention window for disk sizing; see the OPERATIONS runbook"},
      {"telemetry_store_rotations_total", InstrumentKind::kCounter,
       "segments sealed by the size/records/age rotation policy",
       "none"},
      {"telemetry_store_compactions_total", InstrumentKind::kCounter,
       "compaction passes that merged sealed segments",
       "none"},
      {"telemetry_store_truncations_total", InstrumentKind::kCounter,
       "torn tail segments trimmed to the last whole frame at recovery",
       "nonzero after a clean shutdown means something else is writing the directory"},
      {"telemetry_store_persist_errors_total", InstrumentKind::kCounter,
       "writer I/O failures swallowed (disk full/unwritable); repeated failures disable persistence",
       "any growth means the durable log is degrading - check disk space before records drop"},
      {"telemetry_store_segments", InstrumentKind::kGauge,
       "segment files currently in the store directory",
       "pinned at the retention cap with old decisions missing means retention is too tight"},
      {"telemetry_store_flush_seconds", InstrumentKind::kHistogram,
       "wall time of one writer flush (drain + append + rotate check)",
       "a fattening tail means the telemetry disk cannot keep up with decision volume"},
      // --- core: certificate cache ---
      {"certcache_lookups_total", InstrumentKind::kCounter,
       "certificate-cache lookups (incremental re-certification)",
       "none"},
      {"certcache_hits_total", InstrumentKind::kCounter,
       "lookups spliced from a bit-identical cached certificate",
       "low hit rate on policy-only drift means keys churn - check grid alignment"},
      {"certcache_misses_total", InstrumentKind::kCounter,
       "lookups that forced an IBP recompute",
       "see certcache_hits_total"},
      {"certcache_collisions_total", InstrumentKind::kCounter,
       "slot held a different key (hash collision or poisoned entry)",
       "a sustained rate means the cache is too small for the cell population"},
      {"certcache_insertions_total", InstrumentKind::kCounter,
       "freshly computed certificates inserted",
       "none"},
      {"certcache_evictions_total", InstrumentKind::kCounter,
       "LRU evictions under the entry bound",
       "nonzero steady-state means max_entries is below one policy's cell count"},
      // --- core: verification engine ---
      {"verify_probabilistic_runs_total", InstrumentKind::kCounter,
       "criterion-1 Monte-Carlo verification runs",
       "none"},
      {"verify_interval_runs_total", InstrumentKind::kCounter,
       "full interval certification runs",
       "none"},
      {"verify_incremental_runs_total", InstrumentKind::kCounter,
       "incremental (cache-spliced) certification runs",
       "none"},
      {"verify_reach_runs_total", InstrumentKind::kCounter,
       "reachability-tube batch runs",
       "none"},
      {"verify_recert_cells_total", InstrumentKind::kCounter,
       "(leaf x cell) units seen by incremental runs",
       "none"},
      {"verify_recert_cells_cached_total", InstrumentKind::kCounter,
       "cells spliced from the certificate cache",
       "cached/total is the incremental win; persistently low means recert adds overhead"},
      {"verify_recert_cells_computed_total", InstrumentKind::kCounter,
       "cells whose IBP forward actually ran",
       "see verify_recert_cells_cached_total"},
      {"verify_recert_fallbacks_total", InstrumentKind::kCounter,
       "incremental runs that fell back to a full recompute (broad drift)",
       "every generation falling back means dynamics churn - incremental mode buys nothing"},
      // --- adapt: drift monitor + controller ---
      {"adapt_records_drained_total", InstrumentKind::kCounter,
       "telemetry records drained by the adaptation pump",
       "none"},
      {"adapt_records_lost_total", InstrumentKind::kCounter,
       "capture losses observed by the pump (lapped or torn records)",
       "see telemetry_lost_total"},
      {"adapt_transitions_total", InstrumentKind::kCounter,
       "session-consecutive record pairs turned into training transitions",
       "far below records/2 means capture gaps are breaking transition pairing"},
      {"adapt_drift_events_total", InstrumentKind::kCounter,
       "drift alarms acted on by the controller",
       "a burst across clusters usually means a real plant change, not detector noise"},
      {"adapt_drift_alarms_total", InstrumentKind::kCounter,
       "Page-Hinkley alarms fired by the drift monitor",
       "alarms without matching adaptations mean min_transitions gates retraining"},
      {"adapt_drift_residual", InstrumentKind::kHistogram,
       "one-step prediction residual per scored transition (degC)",
       "a rising p99 precedes alarms - the earliest drift signal available"},
      {"adapt_attempts_total", InstrumentKind::kCounter,
       "adaptation generations attempted",
       "attempts without promotions mean candidates fail certification or the shadow gate"},
      {"adapt_promotions_total", InstrumentKind::kCounter,
       "certified candidates promoted (hot-swapped)",
       "see adapt_attempts_total"},
      {"adapt_sessions_evicted_total", InstrumentKind::kCounter,
       "idle sessions evicted by pump housekeeping",
       "none"},
      {"adapt_generation_seconds", InstrumentKind::kHistogram,
       "wall time of one adaptation generation (fine-tune through promote)",
       "growth here delays recovery from drift; see the trace spans for the stage breakdown"},
      // --- common: logging ---
      {"log_warn_total", InstrumentKind::kCounter,
       "WARN log lines emitted",
       "any sustained rate deserves a look at the log stream"},
      {"log_error_total", InstrumentKind::kCounter,
       "ERROR log lines emitted",
       "page on nonzero - errors are exceptional in steady state"},
      // --- process identity ---
      {"build_info", InstrumentKind::kGauge,
       "build fingerprint (FNV-1a of compiler + build date), constant per binary",
       "none - joins a metrics snapshot to the binary that produced it"},
      {"process_uptime_seconds", InstrumentKind::kGauge,
       "seconds since the metrics registry was constructed (sampled at exposition)",
       "a reset without a deploy means the process crashed and restarted"},
  };
  return catalog;
}
// clang-format on

namespace {

const InstrumentSpec& require_instrument(const char* name, InstrumentKind kind) {
  const InstrumentSpec* spec = find_instrument(name);
  if (spec == nullptr) {
    throw std::invalid_argument(std::string("instrument not in catalog: ") + name);
  }
  if (spec->kind != kind) {
    throw std::invalid_argument(std::string("instrument kind mismatch for: ") + name);
  }
  return *spec;
}

// Handles the common-layer hooks publish through; resolved once when the
// global registry is constructed (plain pointers: the registry outlives
// every caller).
Counter* g_log_warn = nullptr;
Counter* g_log_error = nullptr;
Counter* g_pool_batches = nullptr;
Counter* g_pool_items = nullptr;
Histogram* g_pool_seconds = nullptr;
Gauge* g_pool_active = nullptr;

/// Uptime epoch: the instant the global registry was constructed.
std::chrono::steady_clock::time_point g_process_epoch{};

/// FNV-1a over the strings the compiler bakes in — constant for a binary,
/// different across rebuilds, cheap enough to recompute per call.
double build_fingerprint() {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const char* s) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
      h *= 1099511628211ull;
    }
  };
#if defined(__VERSION__)
  mix(__VERSION__);
#endif
  mix(__DATE__);
  mix(__TIME__);
  // Gauges are doubles: keep the low 48 bits so the fingerprint survives
  // the exposition round-trip exactly (2^48 < 2^53).
  return static_cast<double>(h & ((1ull << 48) - 1));
}

void log_hook(LogLevel level) {
  if (level == LogLevel::kWarn) {
    g_log_warn->add(1);
  } else if (level == LogLevel::kError) {
    g_log_error->add(1);
  }
}

void task_pool_hook(std::size_t items, double seconds, std::size_t active) {
  g_pool_batches->add(1);
  g_pool_items->add(items);
  g_pool_seconds->observe(seconds);
  g_pool_active->set(static_cast<double>(active));
  // Task-latency sampling for the trace: 1-in-16 fan-outs per thread
  // become spans, enough to see pool contention without flooding the ring.
  thread_local std::size_t countdown = 0;
  if (countdown == 0) {
    countdown = 16;
    TraceCollector& collector = TraceCollector::global();
    if (collector.enabled()) {
      const std::uint64_t end_ns = collector.now_ns();
      const auto duration_ns = static_cast<std::uint64_t>(seconds * 1e9);
      collector.emit("pool.parallel_for", "pool", end_ns - std::min(end_ns, duration_ns),
                     duration_ns);
    }
  }
  --countdown;
}

}  // namespace

const InstrumentSpec* find_instrument(const std::string& name) {
  static const std::unordered_map<std::string, const InstrumentSpec*> index = [] {
    std::unordered_map<std::string, const InstrumentSpec*> out;
    for (const InstrumentSpec& spec : instrument_catalog()) out.emplace(spec.name, &spec);
    return out;
  }();
  const auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

Counter& counter(const char* name) {
  const InstrumentSpec& spec = require_instrument(name, InstrumentKind::kCounter);
  return MetricsRegistry::global().counter(spec.name, spec.help);
}

Gauge& gauge(const char* name) {
  const InstrumentSpec& spec = require_instrument(name, InstrumentKind::kGauge);
  return MetricsRegistry::global().gauge(spec.name, spec.help);
}

Histogram& histogram(const char* name) {
  const InstrumentSpec& spec = require_instrument(name, InstrumentKind::kHistogram);
  return MetricsRegistry::global().histogram(spec.name, spec.help);
}

void register_catalog() {
  MetricsRegistry& registry = MetricsRegistry::global();
  for (const InstrumentSpec& spec : instrument_catalog()) {
    switch (spec.kind) {
      case InstrumentKind::kCounter: registry.counter(spec.name, spec.help); break;
      case InstrumentKind::kGauge: registry.gauge(spec.name, spec.help); break;
      case InstrumentKind::kHistogram: registry.histogram(spec.name, spec.help); break;
    }
  }
  publish_process_info();
}

void publish_process_info() {
  gauge("build_info").set(build_fingerprint());
  const auto uptime = std::chrono::steady_clock::now() - g_process_epoch;
  gauge("process_uptime_seconds").set(std::chrono::duration<double>(uptime).count());
}

namespace detail {

void install_runtime_hooks(MetricsRegistry& registry) {
  g_process_epoch = std::chrono::steady_clock::now();
  const auto help = [](const char* name) { return std::string(find_instrument(name)->help); };
  g_log_warn = &registry.counter("log_warn_total", help("log_warn_total"));
  g_log_error = &registry.counter("log_error_total", help("log_error_total"));
  g_pool_batches = &registry.counter("taskpool_batches_total", help("taskpool_batches_total"));
  g_pool_items = &registry.counter("taskpool_items_total", help("taskpool_items_total"));
  g_pool_seconds = &registry.histogram("taskpool_batch_seconds", help("taskpool_batch_seconds"));
  g_pool_active = &registry.gauge("taskpool_active_jobs", help("taskpool_active_jobs"));
  set_log_hook(&log_hook);
  common::TaskPool::set_metrics_hook(&task_pool_hook);
}

}  // namespace detail

// Defined here rather than metrics.cpp: constructing the global registry
// installs the common-layer hooks, and only this TU knows both sides.
MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = [] {
    static MetricsRegistry registry;
    detail::install_runtime_hooks(registry);
    return &registry;
  }();
  return *instance;
}

}  // namespace verihvac::obs
