// Lightweight begin/end trace spans with per-thread ring buffers and a
// Chrome trace_event JSON dumper (load the output in chrome://tracing or
// Perfetto to see where a promotion's wall time goes).
//
// Capture discipline mirrors the telemetry rings: when tracing is
// disabled (the default) a span is two relaxed loads and no clock reads;
// when enabled, finishing a span writes one fixed-size record into the
// calling thread's ring under a per-slot seqlock — no locks, no
// allocation on the hot path (rings allocate once per thread, on first
// use). Rings overwrite on wrap and count the overwritten spans, so
// tracing never blocks the traced code.
//
// Contract: `name` and `category` must be string literals (or otherwise
// outlive the collector) — records store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace verihvac::obs {

struct SpanRecord {
  const char* name = nullptr;
  const char* category = nullptr;
  /// Monotonic nanoseconds since the collector's epoch (process start).
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Dense per-ring thread id (stable across the thread's lifetime).
  std::uint32_t tid = 0;
};

class TraceCollector {
 public:
  /// Process-wide collector; rings register themselves here on first use.
  static TraceCollector& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds since the collector's epoch.
  std::uint64_t now_ns() const;

  /// Records a finished span (no-op while disabled). TraceSpan is the
  /// usual entry point; hooks that already timed an interval call this.
  void emit(const char* name, const char* category, std::uint64_t start_ns,
            std::uint64_t duration_ns);

  /// Drops all buffered spans (the rings stay registered).
  void clear();

  /// Consistent copy of every buffered span, start-ordered. Concurrent
  /// writers are tolerated: torn slots (seqlock mismatch) are skipped.
  std::vector<SpanRecord> snapshot() const;

  /// Spans overwritten by ring wrap-around since the last clear().
  std::uint64_t spans_dropped() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"name","cat","ph":"X",
  /// "ts","dur","pid","tid"},...]} with ts/dur in microseconds.
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; throws std::runtime_error on
  /// I/O failure.
  void write_chrome_trace(const std::string& path) const;

  /// Spans each ring can hold before wrapping (fixed at first use).
  static constexpr std::size_t kRingCapacity = 8192;

 private:
  struct Slot {
    /// Seqlock: odd while the owning thread rewrites the payload.
    std::atomic<std::uint64_t> seq{0};
    SpanRecord record;
  };

  struct ThreadRing {
    std::uint32_t tid = 0;
    std::atomic<std::uint64_t> head{0};  ///< total spans ever written
    std::vector<Slot> slots{kRingCapacity};
  };

  TraceCollector();

  ThreadRing& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction
  mutable std::mutex rings_mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
};

/// RAII span: times construction -> finish()/destruction and records the
/// interval into the thread's ring. Costs two relaxed loads when tracing
/// is disabled. Name/category must be string literals.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category), collector_(TraceCollector::global()) {
    if (collector_.enabled()) {
      start_ns_ = collector_.now_ns();
      active_ = true;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  /// Ends the span early (idempotent).
  void finish() {
    if (!active_) return;
    active_ = false;
    const std::uint64_t end_ns = collector_.now_ns();
    collector_.emit(name_, category_, start_ns_, end_ns - start_ns_);
  }

 private:
  const char* name_;
  const char* category_;
  TraceCollector& collector_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace verihvac::obs
