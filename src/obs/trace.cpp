#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace verihvac::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// JSON-escapes a span name/category (literals are expected to be tame,
/// but the dump must stay loadable regardless).
void append_json_string(std::ostringstream& os, const char* text) {
  os << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      os << buffer;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

TraceCollector::TraceCollector() : epoch_ns_(steady_ns()) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector instance;
  return instance;
}

std::uint64_t TraceCollector::now_ns() const { return steady_ns() - epoch_ns_; }

TraceCollector::ThreadRing& TraceCollector::ring_for_this_thread() {
  thread_local const std::shared_ptr<ThreadRing> ring = [this] {
    auto created = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(rings_mutex_);
    created->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(created);
    return created;
  }();
  return *ring;
}

void TraceCollector::emit(const char* name, const char* category, std::uint64_t start_ns,
                          std::uint64_t duration_ns) {
  if (!enabled()) return;
  ThreadRing& ring = ring_for_this_thread();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head % kRingCapacity];
  // Single writer per ring (the owning thread): odd seq marks the rewrite
  // window so snapshot() can skip torn slots.
  slot.seq.store(slot.seq.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  slot.record = {name, category, start_ns, duration_ns, ring.tid};
  slot.seq.store(slot.seq.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  ring.head.store(head + 1, std::memory_order_release);
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    for (Slot& slot : ring->slots) {
      slot.seq.store(slot.seq.load(std::memory_order_relaxed) + 2, std::memory_order_release);
      slot.record = SpanRecord{};
    }
    ring->head.store(0, std::memory_order_release);
  }
}

std::vector<SpanRecord> TraceCollector::snapshot() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t valid = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - valid; i < head; ++i) {
      const Slot& slot = ring->slots[i % kRingCapacity];
      const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before % 2 != 0) continue;  // mid-rewrite
      const SpanRecord record = slot.record;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;  // torn
      if (record.name == nullptr) continue;  // cleared slot
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.tid < b.tid;
  });
  return out;
}

std::uint64_t TraceCollector::spans_dropped() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += head - kRingCapacity;
  }
  return dropped;
}

std::string TraceCollector::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    os << (first ? "" : ",") << "{\"name\":";
    append_json_string(os, span.name);
    os << ",\"cat\":";
    append_json_string(os, span.category);
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.duration_ns) / 1e3, span.tid);
    os << buffer;
    first = false;
  }
  os << "]}";
  return os.str();
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw std::runtime_error("cannot open trace output: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int closed = std::fclose(file);
  if (written != json.size() || closed != 0) {
    throw std::runtime_error("failed writing trace output: " + path);
  }
}

}  // namespace verihvac::obs
