// Historical transition dataset T = {(s, d, a, s')}.
//
// In the paper this is "historical data ... extracted from the building
// management systems (BMS)". Here it is collected by running the simulated
// building under an exploratory controller (the default rule-based schedule
// mixed with random setpoint excursions), which is the standard MBRL
// system-identification recipe (MB2C / CLUE do the same on Sinergym).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "envlib/env.hpp"
#include "envlib/feature_schema.hpp"

namespace verihvac::dyn {

/// Model input layout of the *baseline* schema: the 6 observation dims
/// (observation.hpp) followed by the 2 action dims. Legacy aliases — code
/// that handles arbitrary schemas sizes from TransitionDataset::obs_dims()
/// or DynamicsModel accessors instead.
inline constexpr std::size_t kModelInputDims = env::kInputDims + 2;
inline constexpr std::size_t kHeatSpIndex = env::kInputDims;      // 6
inline constexpr std::size_t kCoolSpIndex = env::kInputDims + 1;  // 7

struct Transition {
  std::vector<double> input;  ///< (s, d) in the collecting schema's layout
  sim::SetpointPair action;
  double next_zone_temp = 0.0;
};

class TransitionDataset {
 public:
  void add(Transition transition);
  std::size_t size() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }
  const Transition& at(std::size_t i) const { return transitions_.at(i); }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Observation dims per transition. Inferred from the first add();
  /// defaults to the baseline width while empty.
  std::size_t obs_dims() const { return obs_dims_; }
  /// Model-input width: observation dims followed by the 2 action dims.
  std::size_t model_input_dims() const { return obs_dims_ + 2; }
  std::size_t heat_index() const { return obs_dims_; }
  std::size_t cool_index() const { return obs_dims_ + 1; }

  /// Assembles the (N x model_input_dims) model-input matrix.
  Matrix inputs() const;
  /// Assembles the (N x 1) target matrix of next zone temperatures.
  Matrix targets() const;
  /// The (N x obs_dims) matrix of policy inputs (s, d) — the "historical
  /// data distribution" that importance sampling in §3.2.1 conditions on.
  Matrix policy_inputs() const;

  /// Concatenates another dataset (must have the same observation width).
  void append(const TransitionDataset& other);

 private:
  std::vector<Transition> transitions_;
  std::size_t obs_dims_ = env::kInputDims;
};

struct CollectionConfig {
  /// Episodes to run (different weather seeds).
  std::size_t episodes = 3;
  /// Probability a step takes a uniformly random valid action instead of
  /// the schedule action (exploration), while the zone is unoccupied.
  double exploration_rate = 0.5;
  /// Exploration while occupied. Kept low: a real BMS log shows mostly
  /// scheduled operation during occupancy, which concentrates the
  /// historical (and hence decision-data) distribution on the occupied
  /// in-comfort region the verification criteria actually guard.
  double occupied_exploration_rate = 0.15;
  std::uint64_t seed = 17;
  /// Observation layout the collected transitions are flattened with.
  /// The action sequence and weather draws are schema-independent, so two
  /// collections differing only in schema visit identical trajectories.
  env::FeatureSchema schema = env::baseline_schema();
};

/// Runs the exploratory controller on copies of `env_config` (varying the
/// weather seed per episode) and records every transition.
TransitionDataset collect_historical_data(const env::EnvConfig& env_config,
                                          const CollectionConfig& config);

}  // namespace verihvac::dyn
