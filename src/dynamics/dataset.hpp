// Historical transition dataset T = {(s, d, a, s')}.
//
// In the paper this is "historical data ... extracted from the building
// management systems (BMS)". Here it is collected by running the simulated
// building under an exploratory controller (the default rule-based schedule
// mixed with random setpoint excursions), which is the standard MBRL
// system-identification recipe (MB2C / CLUE do the same on Sinergym).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "envlib/env.hpp"

namespace verihvac::dyn {

/// Model input layout: the 6 observation dims (observation.hpp) followed by
/// the 2 action dims.
inline constexpr std::size_t kModelInputDims = env::kInputDims + 2;
inline constexpr std::size_t kHeatSpIndex = env::kInputDims;      // 6
inline constexpr std::size_t kCoolSpIndex = env::kInputDims + 1;  // 7

struct Transition {
  std::vector<double> input;  ///< (s, d) — 6 dims
  sim::SetpointPair action;
  double next_zone_temp = 0.0;
};

class TransitionDataset {
 public:
  void add(Transition transition);
  std::size_t size() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }
  const Transition& at(std::size_t i) const { return transitions_.at(i); }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Assembles the (N x 8) model-input matrix.
  Matrix inputs() const;
  /// Assembles the (N x 1) target matrix of next zone temperatures.
  Matrix targets() const;
  /// The (N x 6) matrix of policy inputs (s, d) — the "historical data
  /// distribution" that importance sampling in §3.2.1 conditions on.
  Matrix policy_inputs() const;

  /// Concatenates another dataset.
  void append(const TransitionDataset& other);

 private:
  std::vector<Transition> transitions_;
};

struct CollectionConfig {
  /// Episodes to run (different weather seeds).
  std::size_t episodes = 3;
  /// Probability a step takes a uniformly random valid action instead of
  /// the schedule action (exploration), while the zone is unoccupied.
  double exploration_rate = 0.5;
  /// Exploration while occupied. Kept low: a real BMS log shows mostly
  /// scheduled operation during occupancy, which concentrates the
  /// historical (and hence decision-data) distribution on the occupied
  /// in-comfort region the verification criteria actually guard.
  double occupied_exploration_rate = 0.15;
  std::uint64_t seed = 17;
};

/// Runs the exploratory controller on copies of `env_config` (varying the
/// weather seed per episode) and records every transition.
TransitionDataset collect_historical_data(const env::EnvConfig& env_config,
                                          const CollectionConfig& config);

}  // namespace verihvac::dyn
