// Learned thermal-dynamics model f_hat(s, d, a) -> s'.
//
// An MLP regressor over normalized inputs. Internally the network predicts
// the *temperature delta* (s' - s) in normalized space — the standard MBRL
// trick that makes small one-step residuals well-conditioned — but the
// public API speaks absolute next-state temperature, exactly like the
// paper's f_hat.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dynamics/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/normalizer.hpp"
#include "nn/trainer.hpp"

namespace verihvac::dyn {

struct DynamicsModelConfig {
  std::vector<std::size_t> hidden = {32, 32};
  nn::TrainerConfig trainer;  ///< epochs=150, Adam(1e-3, wd 1e-5) — paper §4.1
  std::uint64_t init_seed = 3;
  /// Observation layout: sizes the input layer (schema dims + 2 action
  /// dims) and locates the zone-temperature dimension by role.
  env::FeatureSchema schema = env::baseline_schema();
};

/// Caller-owned scratch buffers for the allocation-free predict hot path.
/// Concurrent rollouts (control::RolloutEngine) give each worker thread its
/// own instance, making predictions on a shared const model thread-safe.
struct PredictScratch {
  std::vector<double> input;   ///< model input, normalized in place
  std::vector<double> activ_a;  ///< ping-pong activation buffers
  std::vector<double> activ_b;
};

/// Caller-owned scratch for the batched predict path (the batch analogue
/// of PredictScratch, same ownership convention: one per worker thread
/// makes batched prediction on a shared const model/ensemble thread-safe).
/// All buffers grow to the largest batch seen, then get reused.
struct BatchScratch {
  /// Normalized N x input_dims model inputs.
  Matrix normed;
  /// MLP ping-pong activation matrices.
  nn::BatchScratch net;
  /// N x 1 normalized-delta network output.
  Matrix delta;
  // Ensemble accumulators (unused by single-model predictions).
  std::vector<double> member_temps;
  std::vector<double> sum;
  std::vector<double> sum_sq;
};

class DynamicsModel {
 public:
  explicit DynamicsModel(DynamicsModelConfig config = {});

  /// Deep copy (network weights, normalizer, delta statistics). The
  /// adaptation loop clones the serving model into a fine-tune candidate
  /// so the incumbent keeps serving unchanged until promotion.
  DynamicsModel(const DynamicsModel& other);
  DynamicsModel& operator=(const DynamicsModel&) = delete;

  /// Fits normalizers + network on the dataset. Returns the training report.
  nn::TrainingReport train(const TransitionDataset& data);

  /// Continues training the *already trained* network on `data` for
  /// `epochs` epochs (warm start from the current weights; fresh Adam
  /// moments). The input normalizer and delta statistics stay frozen, so
  /// the interval-verifier decomposition (input_normalizer / delta_mean /
  /// delta_std) remains valid and fine-tuning only moves the network — the
  /// adaptation loop's retrain step. `shuffle_salt` perturbs the minibatch
  /// shuffle seed so successive adaptation generations are independent yet
  /// fully seeded. Throws std::logic_error before train().
  nn::TrainingReport fine_tune(const TransitionDataset& data, std::size_t epochs,
                               std::uint64_t shuffle_salt = 0);

  bool trained() const { return trained_; }

  /// Predicts the next zone temperature for one (s, d, a) query.
  /// `x` is the schema-dims policy input; thread-unsafe (internal scratch).
  double predict(const std::vector<double>& x, const sim::SetpointPair& action) const;

  /// Thread-safe variant: identical arithmetic, but all mutable state lives
  /// in the caller-provided scratch (one per worker thread).
  double predict(const std::vector<double>& x, const sim::SetpointPair& action,
                 PredictScratch& scratch) const;

  /// Raw model-input variant (observation dims followed by the 2 setpoints).
  double predict_raw(const std::vector<double>& model_input) const;

  /// Batched prediction for evaluation (rows = input_dims model inputs).
  std::vector<double> predict_batch(const Matrix& model_inputs) const;

  /// Allocation-free batched prediction: fuses normalize -> network ->
  /// denormalize-delta over all rows of `model_inputs` (N x input_dims),
  /// writing next_temps[r] for row r. Thread-safe on a shared const model
  /// with one scratch per worker. Row r is bit-identical to the scalar
  /// predict on the same inputs (locked in by
  /// tests/dynamics/dynamics_model_test and the rollout equivalence tests)
  /// — this is the lock-step rollout engine's hot path.
  void predict_batch_into(const Matrix& model_inputs, std::vector<double>& next_temps,
                          BatchScratch& scratch) const;

  const nn::Mlp& network() const { return *network_; }
  const DynamicsModelConfig& config() const { return config_; }

  /// Observation layout the model was built for.
  const env::FeatureSchema& schema() const { return config_.schema; }
  /// Model-input width: schema dims followed by the 2 action dims.
  std::size_t input_dims() const { return config_.schema.dims() + 2; }
  std::size_t heat_index() const { return config_.schema.dims(); }
  std::size_t cool_index() const { return config_.schema.dims() + 1; }
  /// The state dimension the model predicts, located by role.
  std::size_t zone_temp_index() const { return config_.schema.zone_temp_index(); }

  // Prediction decomposition (exposed for the interval verifier, which
  // re-implements predict() in interval arithmetic):
  //   predict(x) = x[zone_temp_index] + delta_mean + delta_std * net(norm(x)).
  const nn::Normalizer& input_normalizer() const { return input_norm_; }
  double delta_mean() const { return delta_mean_; }
  double delta_std() const { return delta_std_; }

 private:
  DynamicsModelConfig config_;
  std::unique_ptr<nn::Mlp> network_;
  nn::Normalizer input_norm_;
  double delta_mean_ = 0.0;
  double delta_std_ = 1.0;
  bool trained_ = false;

  /// Shared core: scratch.input holds the raw 8-dim model input on entry.
  double predict_prepared(PredictScratch& scratch) const;

  // Member scratch backing the legacy single-threaded predict entry points.
  mutable PredictScratch scratch_;
};

}  // namespace verihvac::dyn
