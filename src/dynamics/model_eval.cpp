#include "dynamics/model_eval.hpp"

#include <cmath>
#include <stdexcept>

namespace verihvac::dyn {

double one_step_rmse(const DynamicsModel& model, const TransitionDataset& data) {
  if (data.empty()) throw std::invalid_argument("one_step_rmse: empty dataset");
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Transition& t = data.at(i);
    const double pred = model.predict(t.input, t.action);
    sum_sq += (pred - t.next_zone_temp) * (pred - t.next_zone_temp);
  }
  return std::sqrt(sum_sq / static_cast<double>(data.size()));
}

double k_step_rollout_mae(const DynamicsModel& model, const TransitionDataset& data,
                          std::size_t k) {
  if (data.size() <= k) throw std::invalid_argument("k_step_rollout_mae: dataset too short");
  double total_error = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start + k < data.size(); start += k) {
    // Roll the model forward from the recorded state at `start`, replaying
    // the recorded disturbances and actions but feeding back predictions.
    const std::size_t zone_dim = model.zone_temp_index();
    std::vector<double> x = data.at(start).input;
    double predicted_temp = x[zone_dim];
    for (std::size_t j = 0; j < k; ++j) {
      const Transition& t = data.at(start + j);
      x = t.input;  // recorded disturbances for this step...
      x[zone_dim] = predicted_temp;  // ...but the model's own state
      predicted_temp = model.predict(x, t.action);
    }
    total_error += std::abs(predicted_temp - data.at(start + k - 1).next_zone_temp);
    ++count;
  }
  return total_error / static_cast<double>(count);
}

}  // namespace verihvac::dyn
