// Bootstrap ensemble of dynamics models.
//
// CLUE's safety mechanism gates MBRL actions on *epistemic* uncertainty:
// disagreement between ensemble members trained on bootstrap resamples of
// the historical data. This class provides the mean prediction (used for
// planning) and the member standard deviation (the uncertainty signal).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dynamics/dynamics_model.hpp"

namespace verihvac::dyn {

struct EnsembleConfig {
  std::size_t members = 3;
  DynamicsModelConfig member_config;
  std::uint64_t bootstrap_seed = 29;
};

struct EnsemblePrediction {
  double mean = 0.0;
  double stddev = 0.0;  ///< epistemic spread across members
};

class EnsembleDynamics {
 public:
  explicit EnsembleDynamics(EnsembleConfig config = {});

  /// Deep copy (every member's weights). The adaptation loop fine-tunes a
  /// clone so a failed certification leaves the live drift-residual
  /// baseline untouched.
  EnsembleDynamics(const EnsembleDynamics& other);
  EnsembleDynamics& operator=(const EnsembleDynamics&) = delete;

  /// Trains every member on an independent bootstrap resample of `data`.
  void train(const TransitionDataset& data);

  /// Fine-tunes every *already trained* member for `epochs` epochs on an
  /// independent bootstrap resample of `data` (fresh resamples drawn from
  /// a generation-salted stream, so successive adaptation rounds are
  /// independent yet reproducible). Member normalizers stay frozen — see
  /// DynamicsModel::fine_tune. Throws std::logic_error before train().
  void fine_tune(const TransitionDataset& data, std::size_t epochs,
                 std::uint64_t generation = 0);

  bool trained() const { return trained_; }
  std::size_t member_count() const { return members_.size(); }
  const DynamicsModel& member(std::size_t i) const { return *members_.at(i); }

  /// Observation layout shared by every member (from member_config).
  const env::FeatureSchema& schema() const { return config_.member_config.schema; }

  /// Mean/stddev across members for one (s, d, a) query.
  EnsemblePrediction predict(const std::vector<double>& x,
                             const sim::SetpointPair& action) const;

  /// Batched variant over N x input_dims model inputs (observation dims
  /// followed by the two setpoints): every member runs one
  /// batched forward, and the member-major accumulation matches the scalar
  /// predict() loop, so out[r] is bit-identical to predict() on row r.
  /// Thread-safe on a shared const ensemble with one scratch per worker.
  void predict_batch_into(const Matrix& model_inputs, std::vector<EnsemblePrediction>& out,
                          BatchScratch& scratch) const;

 private:
  EnsembleConfig config_;
  std::vector<std::unique_ptr<DynamicsModel>> members_;
  bool trained_ = false;
};

}  // namespace verihvac::dyn
