#include "dynamics/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace verihvac::dyn {

EnsembleDynamics::EnsembleDynamics(EnsembleConfig config) : config_(std::move(config)) {
  if (config_.members == 0) throw std::invalid_argument("ensemble needs >= 1 member");
}

EnsembleDynamics::EnsembleDynamics(const EnsembleDynamics& other)
    : config_(other.config_), trained_(other.trained_) {
  members_.reserve(other.members_.size());
  for (const auto& member : other.members_) {
    members_.push_back(std::make_unique<DynamicsModel>(*member));
  }
}

void EnsembleDynamics::train(const TransitionDataset& data) {
  if (data.empty()) throw std::invalid_argument("EnsembleDynamics::train: empty dataset");
  members_.clear();
  Rng rng(config_.bootstrap_seed);
  for (std::size_t m = 0; m < config_.members; ++m) {
    // Bootstrap resample with replacement.
    TransitionDataset resample;
    for (std::size_t i = 0; i < data.size(); ++i) {
      resample.add(data.at(rng.index(data.size())));
    }
    DynamicsModelConfig member_cfg = config_.member_config;
    member_cfg.init_seed = config_.member_config.init_seed + m * 7919;
    member_cfg.trainer.shuffle_seed = config_.member_config.trainer.shuffle_seed + m;
    auto model = std::make_unique<DynamicsModel>(member_cfg);
    model->train(resample);
    members_.push_back(std::move(model));
  }
  trained_ = true;
}

void EnsembleDynamics::fine_tune(const TransitionDataset& data, std::size_t epochs,
                                 std::uint64_t generation) {
  if (!trained_) throw std::logic_error("EnsembleDynamics::fine_tune before train");
  if (data.empty()) throw std::invalid_argument("EnsembleDynamics::fine_tune: empty dataset");
  Rng rng = Rng::stream(config_.bootstrap_seed, generation + 1);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    TransitionDataset resample;
    for (std::size_t i = 0; i < data.size(); ++i) {
      resample.add(data.at(rng.index(data.size())));
    }
    members_[m]->fine_tune(resample, epochs, generation * members_.size() + m);
  }
}

void EnsembleDynamics::predict_batch_into(const Matrix& model_inputs,
                                          std::vector<EnsemblePrediction>& out,
                                          BatchScratch& scratch) const {
  if (!trained_) throw std::logic_error("EnsembleDynamics used before training");
  const std::size_t n = model_inputs.rows();
  scratch.sum.assign(n, 0.0);
  scratch.sum_sq.assign(n, 0.0);
  for (const auto& member : members_) {
    member->predict_batch_into(model_inputs, scratch.member_temps, scratch);
    for (std::size_t r = 0; r < n; ++r) {
      const double p = scratch.member_temps[r];
      scratch.sum[r] += p;
      scratch.sum_sq[r] += p * p;
    }
  }
  const double count = static_cast<double>(members_.size());
  out.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    out[r].mean = scratch.sum[r] / count;
    const double var = std::max(0.0, scratch.sum_sq[r] / count - out[r].mean * out[r].mean);
    out[r].stddev = std::sqrt(var);
  }
}

EnsemblePrediction EnsembleDynamics::predict(const std::vector<double>& x,
                                             const sim::SetpointPair& action) const {
  if (!trained_) throw std::logic_error("EnsembleDynamics used before training");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& member : members_) {
    const double p = member->predict(x, action);
    sum += p;
    sum_sq += p * p;
  }
  const double n = static_cast<double>(members_.size());
  EnsemblePrediction out;
  out.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - out.mean * out.mean);
  out.stddev = std::sqrt(var);
  return out;
}

}  // namespace verihvac::dyn
