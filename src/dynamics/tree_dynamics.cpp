#include "dynamics/tree_dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "envlib/observation.hpp"

namespace verihvac::dyn {

TreeDynamicsModel::TreeDynamicsModel(TreeDynamicsConfig config) : config_(config) {
  config_.tree.min_samples_leaf = std::max(config_.tree.min_samples_leaf, config_.min_samples_leaf);
}

void TreeDynamicsModel::train(const TransitionDataset& data) {
  if (data.empty()) throw std::invalid_argument("TreeDynamicsModel::train: empty dataset");
  if (data.obs_dims() != config_.schema.dims()) {
    throw std::invalid_argument("TreeDynamicsModel::train: dataset observation width does "
                                "not match schema '" +
                                config_.schema.name() + "'");
  }
  const std::size_t zone_dim = config_.schema.zone_temp_index();
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(data.size());
  y.reserve(data.size());
  for (const auto& t : data.transitions()) {
    std::vector<double> row = t.input;
    row.push_back(t.action.heating_c);
    row.push_back(t.action.cooling_c);
    x.push_back(std::move(row));
    y.push_back(t.next_zone_temp - t.input[zone_dim]);
  }
  tree_ = tree::DecisionTreeRegressor(config_.tree);
  tree_.fit(x, y);
}

double TreeDynamicsModel::predict_raw(const std::vector<double>& model_input) const {
  if (!trained()) throw std::logic_error("TreeDynamicsModel used before train");
  if (model_input.size() != input_dims()) {
    throw std::invalid_argument("TreeDynamicsModel::predict_raw: wrong input dims");
  }
  return model_input[config_.schema.zone_temp_index()] + tree_.predict(model_input);
}

double TreeDynamicsModel::predict(const std::vector<double>& x,
                                  const sim::SetpointPair& action) const {
  if (x.size() != config_.schema.dims()) {
    throw std::invalid_argument("TreeDynamicsModel::predict: wrong input dims");
  }
  std::vector<double> row = x;
  row.push_back(action.heating_c);
  row.push_back(action.cooling_c);
  return predict_raw(row);
}

Interval TreeDynamicsModel::next_state_range(const Box& model_input_box) const {
  if (!trained()) throw std::logic_error("TreeDynamicsModel used before train");
  if (model_input_box.size() != input_dims()) {
    throw std::invalid_argument("next_state_range: box width must match the model input");
  }
  const Interval delta = tree_.value_range(model_input_box);
  const Interval& s = model_input_box[config_.schema.zone_temp_index()];
  Interval out;
  out.lo = s.lo + delta.lo;
  out.hi = s.hi + delta.hi;
  return out;
}

double TreeDynamicsModel::rmse(const TransitionDataset& data) const {
  if (data.empty()) throw std::invalid_argument("rmse: empty dataset");
  double total = 0.0;
  for (const auto& t : data.transitions()) {
    const double err = predict(t.input, t.action) - t.next_zone_temp;
    total += err * err;
  }
  return std::sqrt(total / static_cast<double>(data.size()));
}

}  // namespace verihvac::dyn
