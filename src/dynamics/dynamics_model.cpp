#include "dynamics/dynamics_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace verihvac::dyn {

DynamicsModel::DynamicsModel(DynamicsModelConfig config) : config_(std::move(config)) {
  std::vector<std::size_t> widths;
  widths.push_back(input_dims());
  widths.insert(widths.end(), config_.hidden.begin(), config_.hidden.end());
  widths.push_back(1);
  network_ = std::make_unique<nn::Mlp>(widths);
  Rng rng(config_.init_seed);
  network_->init(rng);
}

nn::TrainingReport DynamicsModel::train(const TransitionDataset& data) {
  if (data.empty()) throw std::invalid_argument("DynamicsModel::train: empty dataset");
  if (data.obs_dims() != config_.schema.dims()) {
    throw std::invalid_argument("DynamicsModel::train: dataset has " +
                                std::to_string(data.obs_dims()) +
                                " observation dims, schema '" + config_.schema.name() +
                                "' expects " + std::to_string(config_.schema.dims()));
  }

  const Matrix raw_inputs = data.inputs();
  input_norm_.fit(raw_inputs);
  const Matrix inputs = input_norm_.transform(raw_inputs);

  // Targets: normalized temperature delta.
  const std::size_t zone_dim = zone_temp_index();
  Matrix deltas(data.size(), 1);
  for (std::size_t r = 0; r < data.size(); ++r) {
    deltas(r, 0) = data.at(r).next_zone_temp - data.at(r).input[zone_dim];
  }
  double mean = 0.0;
  for (std::size_t r = 0; r < deltas.rows(); ++r) mean += deltas(r, 0);
  mean /= static_cast<double>(deltas.rows());
  double var = 0.0;
  for (std::size_t r = 0; r < deltas.rows(); ++r) {
    var += (deltas(r, 0) - mean) * (deltas(r, 0) - mean);
  }
  delta_mean_ = mean;
  delta_std_ = std::sqrt(var / static_cast<double>(deltas.rows()));
  if (delta_std_ < 1e-9) delta_std_ = 1.0;
  for (std::size_t r = 0; r < deltas.rows(); ++r) {
    deltas(r, 0) = (deltas(r, 0) - delta_mean_) / delta_std_;
  }

  const nn::TrainingReport report = nn::train(*network_, inputs, deltas, config_.trainer);
  trained_ = true;
  return report;
}

DynamicsModel::DynamicsModel(const DynamicsModel& other)
    : config_(other.config_),
      network_(std::make_unique<nn::Mlp>(*other.network_)),
      input_norm_(other.input_norm_),
      delta_mean_(other.delta_mean_),
      delta_std_(other.delta_std_),
      trained_(other.trained_) {}

nn::TrainingReport DynamicsModel::fine_tune(const TransitionDataset& data, std::size_t epochs,
                                            std::uint64_t shuffle_salt) {
  if (!trained_) throw std::logic_error("DynamicsModel::fine_tune before train");
  if (data.empty()) throw std::invalid_argument("DynamicsModel::fine_tune: empty dataset");

  // Frozen statistics: normalize the new data with the *original* fit so
  // the network keeps seeing the input/target scales it was trained on.
  const Matrix inputs = input_norm_.transform(data.inputs());
  const std::size_t zone_dim = zone_temp_index();
  Matrix deltas(data.size(), 1);
  for (std::size_t r = 0; r < data.size(); ++r) {
    const double delta = data.at(r).next_zone_temp - data.at(r).input[zone_dim];
    deltas(r, 0) = (delta - delta_mean_) / delta_std_;
  }

  nn::TrainerConfig trainer = config_.trainer;
  trainer.epochs = epochs;
  trainer.shuffle_seed = config_.trainer.shuffle_seed + 0x5DEECE66Dull * (shuffle_salt + 1);
  return nn::train(*network_, inputs, deltas, trainer);
}

double DynamicsModel::predict(const std::vector<double>& x,
                              const sim::SetpointPair& action) const {
  return predict(x, action, scratch_);
}

double DynamicsModel::predict(const std::vector<double>& x, const sim::SetpointPair& action,
                              PredictScratch& scratch) const {
  assert(x.size() == config_.schema.dims());
  scratch.input.assign(x.begin(), x.end());
  scratch.input.push_back(action.heating_c);
  scratch.input.push_back(action.cooling_c);
  return predict_prepared(scratch);
}

double DynamicsModel::predict_raw(const std::vector<double>& model_input) const {
  scratch_.input = model_input;
  return predict_prepared(scratch_);
}

double DynamicsModel::predict_prepared(PredictScratch& scratch) const {
  if (!trained_) throw std::logic_error("DynamicsModel used before training");
  assert(scratch.input.size() == input_dims());
  const double current_temp = scratch.input[zone_temp_index()];

  input_norm_.transform_inplace(scratch.input);
  network_->predict(scratch.input, scratch.activ_a, scratch.activ_b);
  const double delta = scratch.activ_a[0] * delta_std_ + delta_mean_;
  return current_temp + delta;
}

std::vector<double> DynamicsModel::predict_batch(const Matrix& model_inputs) const {
  std::vector<double> out;
  BatchScratch scratch;
  predict_batch_into(model_inputs, out, scratch);
  return out;
}

void DynamicsModel::predict_batch_into(const Matrix& model_inputs,
                                       std::vector<double>& next_temps,
                                       BatchScratch& scratch) const {
  if (!trained_) throw std::logic_error("DynamicsModel used before training");
  assert(model_inputs.cols() == input_dims());
  const std::size_t n = model_inputs.rows();
  const std::size_t zone_dim = zone_temp_index();
  input_norm_.transform_into(model_inputs, scratch.normed);
  network_->forward_into(scratch.normed, scratch.delta, scratch.net);
  next_temps.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double delta = scratch.delta(r, 0) * delta_std_ + delta_mean_;
    next_temps[r] = model_inputs(r, zone_dim) + delta;
  }
}

}  // namespace verihvac::dyn
