#include "dynamics/dataset.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace verihvac::dyn {

void TransitionDataset::add(Transition transition) {
  if (transitions_.empty()) {
    obs_dims_ = transition.input.size();
  } else if (transition.input.size() != obs_dims_) {
    throw std::invalid_argument("TransitionDataset::add: observation width mismatch");
  }
  transitions_.push_back(std::move(transition));
}

Matrix TransitionDataset::inputs() const {
  Matrix x(transitions_.size(), model_input_dims());
  for (std::size_t r = 0; r < transitions_.size(); ++r) {
    const Transition& t = transitions_[r];
    for (std::size_t c = 0; c < obs_dims_; ++c) x(r, c) = t.input[c];
    x(r, heat_index()) = t.action.heating_c;
    x(r, cool_index()) = t.action.cooling_c;
  }
  return x;
}

Matrix TransitionDataset::targets() const {
  Matrix y(transitions_.size(), 1);
  for (std::size_t r = 0; r < transitions_.size(); ++r) {
    y(r, 0) = transitions_[r].next_zone_temp;
  }
  return y;
}

Matrix TransitionDataset::policy_inputs() const {
  Matrix x(transitions_.size(), obs_dims_);
  for (std::size_t r = 0; r < transitions_.size(); ++r) {
    for (std::size_t c = 0; c < obs_dims_; ++c) x(r, c) = transitions_[r].input[c];
  }
  return x;
}

void TransitionDataset::append(const TransitionDataset& other) {
  if (other.empty()) return;
  if (transitions_.empty()) {
    obs_dims_ = other.obs_dims_;
  } else if (other.obs_dims_ != obs_dims_) {
    throw std::invalid_argument("TransitionDataset::append: observation width mismatch");
  }
  transitions_.insert(transitions_.end(), other.transitions_.begin(),
                      other.transitions_.end());
}

TransitionDataset collect_historical_data(const env::EnvConfig& env_config,
                                          const CollectionConfig& config) {
  TransitionDataset dataset;
  Rng rng(config.seed);

  for (std::size_t episode = 0; episode < config.episodes; ++episode) {
    env::EnvConfig cfg = env_config;
    cfg.weather_seed = env_config.weather_seed + episode * 1000003ull;
    env::BuildingEnv env(cfg);
    env::Observation obs = env.reset();

    bool done = false;
    while (!done) {
      sim::SetpointPair action;
      const bool occupied = obs.occupants > 0.5;
      const double explore =
          occupied ? config.occupied_exploration_rate : config.exploration_rate;
      if (rng.bernoulli(explore)) {
        // Random valid integer setpoint pair (heat in [15,23], cool in
        // [max(heat,21),30]) — spans the whole action space.
        action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
        const int cool_lo = std::max(static_cast<int>(action.heating_c), 21);
        action.cooling_c = static_cast<double>(rng.uniform_int(cool_lo, 30));
      } else {
        action = occupied ? cfg.default_occupied : cfg.default_unoccupied;
      }

      Transition t;
      t.input = config.schema.to_vector(obs);
      t.action = action;
      const env::StepOutcome outcome = env.step(action);
      t.next_zone_temp = outcome.observation.zone_temp_c;
      dataset.add(std::move(t));

      obs = outcome.observation;
      done = outcome.done;
    }
  }
  return dataset;
}

}  // namespace verihvac::dyn
