// Interpretable tree-based thermal-dynamics model (extension).
//
// The paper verifies an interpretable *policy* against a black-box MLP
// dynamics model f_hat. This module closes the remaining black box: a CART
// regression tree fitted on the same transitions predicts the one-step
// temperature *delta* (s' - s), making the dynamics themselves auditable
// ("if outdoor < 2degC and heating setpoint <= 18, the zone loses about
// 0.4degC per step") and enabling *exact* one-step output ranges over
// axis-aligned input boxes (value_range), which the interval verifier uses
// for a sound, non-probabilistic variant of criterion #1.
//
// Predicting the delta rather than the absolute next state matters for the
// box analysis too: the absolute next state s' = s + g(x) has unit slope in
// s, which a piecewise-constant tree cannot represent — but the *residual*
// g is well approximated by a constant on small boxes.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamics/dataset.hpp"
#include "tree/regression.hpp"

namespace verihvac::dyn {

struct TreeDynamicsConfig {
  tree::RegressionConfig tree;
  /// Leaves smaller than this are prone to memorizing sensor noise;
  /// min_samples_leaf below is the usual CART regularizer.
  std::size_t min_samples_leaf = 5;
  /// Observation layout (sizes the input and locates the state dim).
  env::FeatureSchema schema = env::baseline_schema();
};

class TreeDynamicsModel {
 public:
  explicit TreeDynamicsModel(TreeDynamicsConfig config = {});

  /// Fits the delta tree on the dataset (schema dims + 2 input, s'-s
  /// target).
  void train(const TransitionDataset& data);
  bool trained() const { return tree_.fitted(); }

  const env::FeatureSchema& schema() const { return config_.schema; }
  std::size_t input_dims() const { return config_.schema.dims() + 2; }

  /// Predicts the next zone temperature for one (s, d) + action query.
  double predict(const std::vector<double>& x, const sim::SetpointPair& action) const;
  /// Raw model-input variant (observation dims followed by the setpoints).
  double predict_raw(const std::vector<double>& model_input) const;

  /// Sound next-state range over a model-input box: s' ∈ s_box + delta
  /// range, where the delta range is the exact image of the tree on the
  /// box. Used by the interval verifier.
  Interval next_state_range(const Box& model_input_box) const;

  /// One-step RMSE on a labelled dataset.
  double rmse(const TransitionDataset& data) const;

  const tree::DecisionTreeRegressor& tree() const { return tree_; }

 private:
  TreeDynamicsConfig config_;
  tree::DecisionTreeRegressor tree_;
};

}  // namespace verihvac::dyn
