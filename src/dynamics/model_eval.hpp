// Dynamics-model quality metrics.
//
// One-step RMSE on held-out transitions, and open-loop k-step rollout error
// (the quantity that actually matters for an H=20 planning horizon).
#pragma once

#include "dynamics/dynamics_model.hpp"

namespace verihvac::dyn {

/// Root-mean-square one-step prediction error [degC] over a dataset.
double one_step_rmse(const DynamicsModel& model, const TransitionDataset& data);

/// Mean absolute open-loop error after `k` steps: the model is rolled
/// forward feeding back its own predictions along recorded disturbance/
/// action sequences. `data` must come from a single contiguous episode.
double k_step_rollout_mae(const DynamicsModel& model, const TransitionDataset& data,
                          std::size_t k);

}  // namespace verihvac::dyn
