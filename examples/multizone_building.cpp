// Whole-building deployment: one verified DT policy across all five zones.
//
// The paper extracts and verifies a policy for a single controlled zone of
// the five-zone plant (every experiment in §4 uses that formulation).
// Deployment in a real building is per-zone: each zone walks the same
// verified tree with its own temperature, because the policy input (s, d)
// carries no zone identity. This example:
//   1. runs the standard pipeline once (extract + verify),
//   2. clones the verified policy across all five zones via the
//      MultiZoneCoordinator,
//   3. simulates January against the building's default schedule,
//   4. prints a per-zone energy/comfort report.
#include <cstdio>
#include <memory>
#include <vector>

#include "control/multizone.hpp"
#include "control/rule_based.hpp"
#include "core/pipeline.hpp"
#include "envlib/multizone_env.hpp"
#include "envlib/multizone_metrics.hpp"

namespace {

using namespace verihvac;

env::MultiZoneMetrics run_building(const env::EnvConfig& config,
                                   control::MultiZoneCoordinator& coordinator) {
  env::MultiZoneEnv building(config);
  env::MultiZoneMetrics metrics(building.zone_count());
  auto observations = building.reset();
  coordinator.reset();
  while (true) {
    const auto forecast = building.forecast(coordinator.forecast_horizon());
    const auto actions = coordinator.act(observations, forecast);
    const auto outcome = building.step(actions);
    metrics.add(outcome);
    if (outcome.done) break;
    observations = outcome.observations;
  }
  return metrics;
}

control::MultiZoneCoordinator clone_across_zones(std::size_t zones,
                                                 const core::PipelineArtifacts& artifacts,
                                                 bool use_dt) {
  std::vector<std::shared_ptr<control::Controller>> per_zone;
  for (std::size_t z = 0; z < zones; ++z) {
    if (use_dt) {
      per_zone.push_back(std::shared_ptr<control::Controller>(artifacts.make_dt_policy()));
    } else {
      // The stock building schedule (Fig. 4's default_agent, DESIGN.md
      // §5.17): conditions to the comfort band around the clock.
      per_zone.push_back(std::make_shared<control::RuleBasedController>(
          artifacts.config.env.default_occupied, artifacts.config.env.default_occupied));
    }
  }
  return control::MultiZoneCoordinator(std::move(per_zone));
}

}  // namespace

int main() {
  using namespace verihvac;

  core::PipelineConfig config = core::PipelineConfig::for_city("Pittsburgh");
  config.decision_points = 400;  // demo scale
  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  std::printf("verified policy: %zu nodes, safe probability %.3f\n\n",
              artifacts.policy->tree().node_count(),
              artifacts.probabilistic.safe_probability);

  const std::size_t zones = env::MultiZoneEnv(config.env).zone_count();
  auto dt_coordinator = clone_across_zones(zones, artifacts, /*use_dt=*/true);
  auto default_coordinator = clone_across_zones(zones, artifacts, /*use_dt=*/false);

  const env::MultiZoneMetrics dt_run = run_building(config.env, dt_coordinator);
  const env::MultiZoneMetrics default_run = run_building(config.env, default_coordinator);

  std::printf("whole-building January, %zu zones, Pittsburgh:\n", zones);
  std::printf("%-22s %12s %18s\n", "controller", "energy kWh", "mean violation");
  std::printf("%-22s %12.1f %18.3f\n", "stock 24/7 schedule", default_run.total_energy_kwh(),
              default_run.mean_violation_rate());
  std::printf("%-22s %12.1f %18.3f\n\n", "verified DT (all zones)",
              dt_run.total_energy_kwh(), dt_run.mean_violation_rate());

  std::printf("per-zone violation rates (DT | stock):\n");
  for (std::size_t z = 0; z < zones; ++z) {
    std::printf("  zone %zu: %.3f | %.3f\n", z, dt_run.violation_rate(z),
                default_run.violation_rate(z));
  }
  const double saved = default_run.total_energy_kwh() - dt_run.total_energy_kwh();
  if (saved >= 0.0) {
    std::printf("\nenergy saved by the verified DT building-wide: %.1f kWh/month (%.1f%%)\n"
                "(the single-zone Fig. 4 saving, replicated across every zone; the DT\n"
                "policy carries no zone identity, so one verified tree serves all five)\n",
                saved, 100.0 * saved / default_run.total_energy_kwh());
  } else {
    std::printf("\nthe verified DT spends %.1f kWh/month more than the stock schedule;\n"
                "inspect the per-zone rates above — zones whose thermal load differs\n"
                "most from the extraction zone are where a cloned policy pays, and\n"
                "per-zone extraction (one pipeline per zone) recovers the savings.\n",
                -saved);
  }
  return 0;
}
