// Control comparison: all four agents of Fig. 4 on one live January.
//
// Runs the building's default rule-based schedule, the RS-based MBRL
// agent, the uncertainty-gated CLUE baseline and the verified DT policy
// through identical episodes and prints energy / comfort / latency side
// by side — the downstream-user view of the paper's headline claim.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "control/evaluate.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace verihvac;

struct Row {
  std::string name;
  env::EpisodeMetrics metrics;
  double mean_decision_ms = 0.0;
};

Row evaluate(const core::PipelineConfig& config, control::Controller& controller) {
  env::BuildingEnv building(config.env);
  controller.reset();
  env::Observation obs = building.reset();
  env::EpisodeMetrics metrics;
  double total_ms = 0.0;
  std::size_t decisions = 0;
  bool done = false;
  while (!done) {
    const auto forecast = building.forecast(controller.forecast_horizon());
    const auto t0 = std::chrono::steady_clock::now();
    const sim::SetpointPair action = controller.act(obs, forecast);
    const auto t1 = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++decisions;
    const env::StepOutcome outcome = building.step(action);
    metrics.add(outcome);
    obs = outcome.observation;
    done = outcome.done;
  }
  return Row{controller.name(), metrics,
             decisions ? total_ms / static_cast<double>(decisions) : 0.0};
}

}  // namespace

int main() {
  core::PipelineConfig config = core::PipelineConfig::for_city("Pittsburgh");
  config.env.days = 14;
  config.train_ensemble = true;  // CLUE needs the bootstrap ensemble
  const core::PipelineArtifacts artifacts = core::run_pipeline(config);

  std::vector<Row> rows;
  {
    auto agent = artifacts.make_default_controller();
    rows.push_back(evaluate(config, *agent));
  }
  {
    auto agent = artifacts.make_mbrl_agent();
    rows.push_back(evaluate(config, *agent));
  }
  {
    auto agent = artifacts.make_clue_agent();
    rows.push_back(evaluate(config, *agent));
    std::printf("CLUE fallback rate: %.1f%% of decisions hit the uncertainty gate\n",
                agent->fallback_rate() * 100.0);
  }
  {
    auto agent = artifacts.make_dt_policy();
    rows.push_back(evaluate(config, *agent));
  }

  AsciiTable table("Agent comparison — Pittsburgh, " + std::to_string(config.env.days) +
                   " January days");
  table.set_header({"agent", "energy [kWh]", "violation rate", "efficiency score",
                    "mean decision [ms]"});
  for (const auto& r : rows) {
    table.add_row(r.name,
                  {r.metrics.total_energy_kwh(), r.metrics.violation_rate(),
                   r.metrics.energy_efficiency_score(), r.mean_decision_ms},
                  3);
  }
  table.print();

  const double savings =
      rows.front().metrics.total_energy_kwh() - rows.back().metrics.total_energy_kwh();
  std::printf("\nDT policy saves %.1f kWh vs the default schedule while staying "
              "deterministic and verifiable.\n",
              savings);
  return 0;
}
