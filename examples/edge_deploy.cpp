// Edge deployment: render a verified policy as firmware-ready C99.
//
// The final arrow of the paper's pipeline (Fig. 2: verified tree ->
// "Deploy" -> building edge device). Building controllers are usually
// bare-metal C targets without an OS, a heap, or a C++ runtime, so this
// example shows the complete hand-off:
//
//   1. run the bundled extraction+verification pipeline for a city,
//   2. export the verified DtPolicy as <prefix>.c / <prefix>.h,
//   3. if a host C compiler is available, compile the exported module with
//      a replay harness and cross-check it against the in-process policy
//      on a simulated operating day (a bit-exactness acceptance test).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/edge_export.hpp"
#include "core/pipeline.hpp"
#include "envlib/env.hpp"

int main() {
  using namespace verihvac;

  // --- Stage 1: extract + verify (one call; see extract_and_verify.cpp
  // for the long-form version of what happens inside). ---
  core::PipelineConfig config = core::PipelineConfig::for_city("Pittsburgh");
  config.decision_points = 300;  // demo scale; VERI_HVAC_FULL=1 for paper scale
  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  const core::DtPolicy& policy = *artifacts.policy;
  std::printf("verified policy: %zu nodes, %zu leaves, safe probability %.3f\n",
              policy.tree().node_count(), policy.tree().leaf_count(),
              artifacts.probabilistic.safe_probability);

  // --- Stage 2: export as C99. ---
  const auto dir = std::filesystem::temp_directory_path() / "verihvac_edge";
  std::filesystem::create_directories(dir);
  core::EdgeExportOptions options;
  options.prefix = "veri_hvac";
  options.style = tree::CodegenStyle::kFlatTable;  // constant flash footprint
  core::export_policy_c(policy, dir.string(), options);
  std::printf("exported: %s/veri_hvac.c (+.h)\n", dir.c_str());

  // --- Stage 3: compile + replay acceptance test. ---
  const std::string harness_path = (dir / "harness.c").string();
  {
    std::ofstream harness(harness_path);
    harness << "#include <stdio.h>\n"
               "#include \"veri_hvac.h\"\n"
               "int main(void) {\n"
               "  double x[6], h, c;\n"
               "  while (scanf(\"%lf %lf %lf %lf %lf %lf\", &x[0], &x[1], &x[2],\n"
               "               &x[3], &x[4], &x[5]) == 6) {\n"
               "    veri_hvac_decide(x, &h, &c);\n"
               "    printf(\"%.17g %.17g\\n\", h, c);\n"
               "  }\n"
               "  return 0;\n"
               "}\n";
  }
  const std::string bin_path = (dir / "edge_policy").string();
  const std::string compile = "cc -std=c99 -O2 -I" + dir.string() + " -o " + bin_path + " " +
                              (dir / "veri_hvac.c").string() + " " + harness_path +
                              " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    std::printf("no host C compiler; skipping the replay acceptance test\n");
    return 0;
  }

  // One simulated day of observations, replayed through both policies.
  env::BuildingEnv building(config.env);
  env::Observation obs = building.reset();
  std::vector<std::vector<double>> inputs;
  for (int step = 0; step < 96; ++step) {  // 96 x 15 min = 24 h
    inputs.push_back(obs.to_vector());
    obs = building.step(policy.decide(obs.to_vector())).observation;
  }
  const std::string in_path = (dir / "day.in").string();
  {
    std::ofstream in_file(in_path);
    in_file.precision(17);
    for (const auto& x : inputs) {
      for (std::size_t j = 0; j < x.size(); ++j) in_file << (j ? " " : "") << x[j];
      in_file << "\n";
    }
  }
  const std::string out_path = (dir / "day.out").string();
  if (std::system((bin_path + " < " + in_path + " > " + out_path).c_str()) != 0) {
    std::printf("replay harness failed to run\n");
    return 1;
  }

  std::ifstream out_file(out_path);
  std::size_t mismatches = 0;
  for (const auto& x : inputs) {
    double heat = 0.0, cool = 0.0;
    if (!(out_file >> heat >> cool)) {
      std::printf("replay output truncated\n");
      return 1;
    }
    const auto expected = policy.decide(x);
    if (heat != expected.heating_c || cool != expected.cooling_c) ++mismatches;
  }
  std::printf("acceptance test: %zu/%zu decisions bit-identical -> %s\n",
              inputs.size() - mismatches, inputs.size(), mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}
