// Custom climate: extending the library to a city the paper didn't test.
//
// The extraction pipeline is city-agnostic — everything it needs is a
// climate profile (the per-city input distribution that drives the Eq. 5
// importance sampling). This example defines a synthetic "Fairbanks-like"
// deep-winter profile, runs the pipeline on it, and compares the verified
// DT policy against the default schedule — the workflow a practitioner
// follows to commission a new building.
#include <cstdio>

#include "control/evaluate.hpp"
#include "core/pipeline.hpp"
#include "weather/climate.hpp"

int main() {
  using namespace verihvac;

  // A deep-winter continental profile (much colder than Pittsburgh).
  weather::ClimateProfile deep_winter;
  deep_winter.name = "DeepWinter";
  deep_winter.zone = weather::ClimateZone::k4A;  // closest available tag
  deep_winter.latitude_deg = 61.0;
  deep_winter.mean_temp_c = -18.0;
  deep_winter.diurnal_amp_c = 5.0;
  deep_winter.synoptic_sigma_c = 6.0;
  deep_winter.synoptic_tau_hours = 48.0;
  deep_winter.mean_rh = 70.0;
  deep_winter.rh_sigma = 8.0;
  deep_winter.mean_wind = 2.0;
  deep_winter.wind_sigma = 1.2;
  deep_winter.clear_sky_peak = 120.0;  // high latitude, short January days
  deep_winter.mean_cloud_cover = 0.7;

  core::PipelineConfig config;  // defaults + our custom climate
  config.city = deep_winter.name;
  config.env.climate = deep_winter;
  config.env.days = 14;
  config.decision_points = 500;
  // Reuse the scaled optimizer settings the named-city factory would pick.
  const core::PipelineConfig scaled = core::PipelineConfig::for_city("Pittsburgh");
  config.rs = scaled.rs;
  config.rs_distill = scaled.rs_distill;
  config.decision = scaled.decision;
  config.model = scaled.model;
  config.collection = scaled.collection;
  config.probabilistic_samples = scaled.probabilistic_samples;

  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  std::printf("\n[%s] tree: %zu nodes, safe probability %.1f%%, "
              "corrected leaves: %zu\n",
              config.city.c_str(), artifacts.policy->tree().node_count(),
              artifacts.probabilistic.safe_probability * 100.0,
              artifacts.formal.corrected_crit2 + artifacts.formal.corrected_crit3);

  env::BuildingEnv dt_building(config.env);
  auto policy = artifacts.make_dt_policy();
  const auto dt = control::run_episode(dt_building, *policy);

  env::BuildingEnv default_building(config.env);
  auto fallback = artifacts.make_default_controller();
  const auto base = control::run_episode(default_building, *fallback);

  std::printf("\n%-22s %12s %16s\n", "agent", "energy [kWh]", "violation rate");
  std::printf("%-22s %12.1f %16.3f\n", "default schedule", base.total_energy_kwh(),
              base.violation_rate());
  std::printf("%-22s %12.1f %16.3f\n", "DT policy (verified)", dt.total_energy_kwh(),
              dt.violation_rate());
  std::printf("\nsavings: %.1f kWh over %d days in a %.0f degC-mean climate\n",
              base.total_energy_kwh() - dt.total_energy_kwh(), config.env.days,
              deep_winter.mean_temp_c);

  // In a climate this cold the heating plant saturates: verify the safety
  // margin the probabilistic criterion reports before trusting the policy.
  if (!artifacts.probabilistic.passes(config.criteria)) {
    std::printf("NOTE: criterion #1 below threshold — a building manager would "
                "raise equipment capacity or relax the comfort band.\n");
  }
  return 0;
}
