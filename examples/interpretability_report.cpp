// Interpretability report: the artifacts a building engineer reviews
// before signing off on a learned controller.
//
// The paper's pitch (§3.2.2) is that the extracted policy is "fully
// interpretable and knowledgeable to human experts". This example renders
// that claim as a concrete review packet for one extracted-and-verified
// policy:
//   1. which physical variables the policy actually consults (feature
//      importance),
//   2. what it decides across the input space (per-action coverage),
//   3. *why* it makes specific decisions on scenarios an engineer would
//      probe (decision-path explanations, with verifier-corrected leaves
//      flagged),
//   4. the verification summary tying it together.
#include <cstdio>
#include <vector>

#include "core/interpret.hpp"
#include "core/pipeline.hpp"

namespace {

void explain_scenario(const verihvac::core::DtPolicy& policy, const char* title,
                      const std::vector<double>& x, const std::vector<int>& corrected) {
  std::printf("--- %s ---\n", title);
  std::printf("input: zone %.1f degC, outdoor %.1f degC, humidity %.0f%%, wind %.1f m/s,\n"
              "       solar %.0f W/m2, occupants %.0f\n",
              x[0], x[1], x[2], x[3], x[4], x[5]);
  std::printf("%s\n", verihvac::core::explain(policy, x, corrected).to_string().c_str());
}

}  // namespace

int main() {
  using namespace verihvac;

  core::PipelineConfig config = core::PipelineConfig::for_city("Pittsburgh");
  config.decision_points = 400;  // demo scale
  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  const core::DtPolicy& policy = *artifacts.policy;

  std::printf("=== policy review packet: Pittsburgh, January ===\n\n");
  std::printf("tree: %zu nodes, %zu leaves, depth %zu; %zu decision data points\n\n",
              policy.tree().node_count(), policy.tree().leaf_count(), policy.tree().depth(),
              artifacts.decisions.size());

  std::printf("%s\n", core::feature_importance_report(policy).c_str());
  std::printf("%s\n", core::policy_summary_report(policy).c_str());

  // Leaves the verifier edited (flagged in explanations below).
  std::vector<int> corrected;
  for (const auto& finding : artifacts.formal.findings) {
    if (finding.corrected) corrected.push_back(finding.leaf);
  }
  std::printf("verifier: %zu leaves corrected by Algorithm 1; criterion #1 safe\n"
              "probability %.3f over %zu samples\n\n",
              corrected.size(), artifacts.probabilistic.safe_probability,
              artifacts.probabilistic.samples);

  // Scenario probes an engineer would ask about.
  explain_scenario(policy, "cold occupied morning (heating expected)",
                   {18.5, -6.0, 70.0, 4.0, 50.0, 11.0}, corrected);
  explain_scenario(policy, "warm occupied afternoon (cooling or coast)",
                   {24.5, 10.0, 40.0, 2.0, 300.0, 11.0}, corrected);
  explain_scenario(policy, "mild occupied midday (hold)",
                   {21.5, 2.0, 55.0, 3.0, 200.0, 11.0}, corrected);
  explain_scenario(policy, "unoccupied night (setback expected)",
                   {19.0, -8.0, 75.0, 5.0, 0.0, 0.0}, corrected);

  std::printf("every decision above is reproducible: the same input always walks the\n"
              "same root-to-leaf path (determinism is what the verifier certifies).\n");
  return 0;
}
