// Extract-and-verify: the deployment workflow of Fig. 2, step by step,
// with the intermediate artifacts a building engineer would inspect.
//
// Unlike the quickstart (which calls the bundled pipeline), this example
// drives each stage manually and shows:
//   * what the historical dataset looks like,
//   * the dynamics-model training report,
//   * how the Eq. 5 augmented sampler concentrates decision queries,
//   * the raw (unverified) tree vs the verified (corrected) tree,
//   * the interpretable rule dump and the Graphviz export,
//   * serialization round-trip to an "edge device" file.
#include <cstdio>
#include <filesystem>

#include "core/decision_data.hpp"
#include "core/dt_policy.hpp"
#include "core/verification.hpp"
#include "dynamics/dataset.hpp"
#include "dynamics/dynamics_model.hpp"
#include "envlib/env.hpp"
#include "tree/tree_io.hpp"
#include "weather/climate.hpp"

int main() {
  using namespace verihvac;

  // --- Stage 1: historical data from the building management system. ---
  env::EnvConfig env_config;
  env_config.climate = weather::profile_by_name("Pittsburgh");
  env_config.days = 14;
  dyn::CollectionConfig collection;
  collection.episodes = 1;
  const dyn::TransitionDataset historical =
      dyn::collect_historical_data(env_config, collection);
  std::printf("historical dataset: %zu transitions of (s, d, a, s')\n",
              historical.size());

  // --- Stage 2: thermal dynamics model. ---
  dyn::DynamicsModelConfig model_config;  // paper §4.1 hyperparameters
  dyn::DynamicsModel model(model_config);
  const nn::TrainingReport report = model.train(historical);
  std::printf("dynamics model: train loss %.4f, validation loss %.4f (MSE, degC^2)\n",
              report.final_train_loss, report.final_val_loss);

  // --- Stage 3: decision-data generation (§3.2.1). ---
  control::ActionSpace actions;
  control::RandomShootingConfig rs;
  rs.samples = 128;
  rs.horizon = 10;
  rs.refine_first_action = true;  // sharp supervision labels
  control::MbrlAgent teacher(model, rs, actions, env_config.reward, /*seed=*/7);

  core::DecisionDataConfig decision_config;  // noise_level = 0.01 (§4.1)
  core::DecisionDataGenerator generator(historical, decision_config);
  std::printf("augmented sampler: noise level %.2f over %zu input dims\n",
              generator.sampler().noise_level(), generator.sampler().dims());
  const core::DecisionDataset decisions = generator.generate(teacher, 400);
  std::printf("decision dataset Pi: %zu entries\n", decisions.size());

  // --- Stage 4: CART fit (§3.2.2). ---
  core::DtPolicy policy = core::DtPolicy::fit(decisions, actions);
  std::printf("raw tree: %zu nodes, %zu leaves, depth %zu\n",
              policy.tree().node_count(), policy.tree().leaf_count(),
              policy.tree().depth());

  // --- Stage 5: verification (§3.3). ---
  core::VerificationCriteria criteria;  // winter comfort, l = 0.9
  const core::FormalReport formal = core::verify_formal(policy, criteria, /*correct=*/true);
  std::printf("Algorithm 1: %zu/%zu leaves subject to crit #2/#3; "
              "%zu corrected (#2: %zu, #3: %zu)\n",
              formal.leaves_subject_crit2 + formal.leaves_subject_crit3,
              formal.leaves_total, formal.corrected_crit2 + formal.corrected_crit3,
              formal.corrected_crit2, formal.corrected_crit3);

  Rng rng(404);
  const core::ProbabilisticReport prob = core::verify_probabilistic_one_step(
      policy, model, generator.sampler(), criteria, 2000, rng);
  std::printf("criterion #1: safe probability %.3f over %zu one-step samples -> %s\n",
              prob.safe_probability, prob.samples,
              prob.passes(criteria) ? "PASS" : "FAIL");

  // --- Stage 6: artifacts for deployment and for the engineer. ---
  const auto dir = std::filesystem::temp_directory_path();
  const std::string tree_path = (dir / "verihvac_policy.tree").string();
  const std::string dot_path = (dir / "verihvac_policy.dot").string();
  tree::save_tree(policy.tree(), tree_path);
  std::FILE* dot = std::fopen(dot_path.c_str(), "w");
  if (dot != nullptr) {
    const auto& names = env::input_dim_names();
    const std::string graphviz = tree::to_dot(
        policy.tree(), std::vector<std::string>(names.begin(), names.end()));
    std::fwrite(graphviz.data(), 1, graphviz.size(), dot);
    std::fclose(dot);
  }
  std::printf("\nserialized policy -> %s\nGraphviz export   -> %s\n", tree_path.c_str(),
              dot_path.c_str());

  // Round-trip check: the deployed tree decides identically.
  const tree::DecisionTreeClassifier reloaded = tree::load_tree(tree_path);
  core::DtPolicy deployed(reloaded, actions);
  env::BuildingEnv building(env_config);
  env::Observation obs = building.reset();
  bool identical = true;
  for (int i = 0; i < 100; ++i) {
    const auto a = policy.decide(obs.to_vector());
    const auto b = deployed.decide(obs.to_vector());
    identical = identical && a.heating_c == b.heating_c && a.cooling_c == b.cooling_c;
    obs = building.step(b).observation;
  }
  std::printf("deployment round-trip: decisions identical on 100 live steps: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
