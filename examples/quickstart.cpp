// Quickstart: extract, verify and deploy a decision-tree HVAC policy.
//
// This walks the full Fig. 2 pipeline on a small workload:
//   1. collect historical (s, d, a, s') data from the simulated building,
//   2. train the thermal dynamics model,
//   3. distill the stochastic RS controller into a decision dataset,
//   4. fit the CART policy,
//   5. verify it (Algorithm 1 + probabilistic criterion #1),
//   6. run the verified policy through a live January episode.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "control/evaluate.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace verihvac;

  // 1-5. The pipeline bundles the whole extraction + verification chain.
  // PipelineConfig::for_city honours the VERI_HVAC_* environment knobs;
  // shrink a couple of settings so the quickstart finishes in seconds.
  core::PipelineConfig config = core::PipelineConfig::for_city("Pittsburgh");
  config.env.days = 14;
  config.decision_points = 400;
  const core::PipelineArtifacts artifacts = core::run_pipeline(config);

  std::printf("\nextracted tree: %zu nodes, %zu leaves, depth %zu\n",
              artifacts.policy->tree().node_count(), artifacts.policy->tree().leaf_count(),
              artifacts.policy->tree().depth());
  std::printf("formal verification: %zu leaves corrected (crit #2: %zu, crit #3: %zu)\n",
              artifacts.formal.corrected_crit2 + artifacts.formal.corrected_crit3,
              artifacts.formal.corrected_crit2, artifacts.formal.corrected_crit3);
  std::printf("probabilistic verification: safe probability %.1f%% (threshold %.0f%%)\n",
              artifacts.probabilistic.safe_probability * 100.0,
              config.criteria.safe_probability_threshold * 100.0);

  // 6. Deploy into a live episode and report the paper's metrics.
  env::BuildingEnv building(config.env);
  auto policy = artifacts.make_dt_policy();
  const env::EpisodeMetrics metrics = control::run_episode(building, *policy);
  std::printf("\ndeployed episode (%d days): %.1f kWh, violation rate %.3f, "
              "efficiency score %.2f\n",
              config.env.days, metrics.total_energy_kwh(), metrics.violation_rate(),
              metrics.energy_efficiency_score());

  // The tree is interpretable: print its first few rules.
  const std::string text = artifacts.policy->to_text();
  std::printf("\npolicy rules (truncated):\n%.1200s...\n", text.c_str());
  return 0;
}
