// Cooling-season extraction: Tucson in July with the summer comfort zone.
//
// The paper evaluates January only, but its machinery is seasonal by
// construction: Eq. 2 takes the comfort range as a parameter and §2.1
// defines the summer zone as [23, 26] degC. This example runs the full
// extract-and-verify pipeline against a July desert climate, where the
// control problem inverts — criterion #2 (too warm -> cool) carries the
// load instead of #3, and the energy proxy is dominated by the cooling
// setpoint distance. A faithful seasonal port must show:
//   * corrections concentrate on criterion #2 (the cooling side),
//   * the DT still beats the default schedule on the energy/violation
//     trade,
//   * the verified safe probability stays high.
#include <cstdio>
#include <memory>

#include "control/evaluate.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace verihvac;

  core::PipelineConfig config = core::PipelineConfig::for_city("TucsonJuly");
  // Season switch: summer comfort for the reward and the verifier — but
  // extract with a 0.5 degC *margin* on both edges. The RS teacher is
  // boundary-riding-optimal: with the model predicting an exact landing,
  // cooling at 26.0 degC (the comfort ceiling) is cheaper than 25.0 and
  // "never violates" — until the real plant's substep limit cycle pokes
  // a few hundredths above the line every other step. Training against
  // the shrunk band keeps the executed trajectory strictly inside the
  // true band; evaluation below uses the true [23, 26].
  const env::ComfortRange true_comfort = env::summer_comfort();
  env::ComfortRange margin_comfort = true_comfort;
  margin_comfort.lo += 0.5;
  margin_comfort.hi -= 0.5;
  config.env.reward.comfort = margin_comfort;
  config.criteria.comfort = margin_comfort;
  // A cooling-season default schedule (the winter default of 20/23.5
  // would fight the desert heat pointlessly). The unoccupied pair keeps a
  // 27 degC night *ceiling* instead of the winter's full setback: letting
  // a desert zone soak to 30+ degC overnight makes the morning pull-down
  // exceed the recoverable envelope — the cooling-season analogue of the
  // paper's under/overshoot discussion in §3.1.
  config.env.default_occupied = {21.0, 24.0};
  config.env.default_unoccupied = {15.0, 27.0};
  // Autosize for the July design day: the paper plant's tonnage is sized
  // for a mild January and saturates under 1000 W/m2 of desert sun.
  config.env.hvac_capacity_scale = 2.5;
  config.decision_points = 400;  // demo scale

  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  std::printf("Tucson July (summer comfort [%.1f, %.1f] degC, extraction margin 0.5):\n",
              true_comfort.lo, true_comfort.hi);
  std::printf("  tree: %zu nodes, %zu leaves\n", artifacts.policy->tree().node_count(),
              artifacts.policy->tree().leaf_count());
  std::printf("  corrections: #2 (too warm) %zu, #3 (too cold) %zu\n",
              artifacts.formal.corrected_crit2, artifacts.formal.corrected_crit3);
  std::printf("  criterion #1 safe probability: %.3f\n\n",
              artifacts.probabilistic.safe_probability);

  // Deployment environment: metrics score against the TRUE summer band.
  env::EnvConfig deploy_env = config.env;
  deploy_env.reward.comfort = true_comfort;

  env::BuildingEnv dt_env(deploy_env);
  auto policy = artifacts.make_dt_policy();
  const env::EpisodeMetrics dt_run = control::run_episode(dt_env, *policy);

  env::BuildingEnv default_env(deploy_env);
  auto schedule = artifacts.make_default_controller();
  const env::EpisodeMetrics default_run = control::run_episode(default_env, *schedule);

  std::printf("July cooling month, single controlled zone:\n");
  std::printf("%-18s %12s %12s\n", "controller", "energy kWh", "violation");
  std::printf("%-18s %12.1f %12.3f\n", "default schedule", default_run.total_energy_kwh(),
              default_run.violation_rate());
  std::printf("%-18s %12.1f %12.3f\n", "verified DT", dt_run.total_energy_kwh(),
              dt_run.violation_rate());

  const bool shape_holds = dt_run.total_energy_kwh() <= default_run.total_energy_kwh() ||
                           dt_run.violation_rate() <= default_run.violation_rate();
  std::printf("\nseasonal port %s: corrections sit on the cooling side and the DT\n"
              "holds the energy/violation trade against the schedule.\n",
              shape_holds ? "holds" : "DID NOT hold");
  return shape_holds ? 0 : 1;
}
