#include "nn/normalizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace verihvac::nn {
namespace {

TEST(NormalizerTest, TransformedDataHasZeroMeanUnitStd) {
  Rng rng(2);
  Matrix data(500, 3);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    data(r, 0) = rng.normal(10.0, 4.0);
    data(r, 1) = rng.normal(-3.0, 0.5);
    data(r, 2) = rng.uniform(0.0, 100.0);
  }
  Normalizer norm;
  norm.fit(data);
  const Matrix z = norm.transform(data);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) mean += z(r, c);
    mean /= static_cast<double>(z.rows());
    double var = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= static_cast<double>(z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(NormalizerTest, InverseTransformRoundTrips) {
  Matrix data{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  Normalizer norm;
  norm.fit(data);
  const Matrix back = norm.inverse_transform(norm.transform(data));
  for (std::size_t i = 0; i < data.data().size(); ++i) {
    EXPECT_NEAR(back.data()[i], data.data()[i], 1e-12);
  }
}

TEST(NormalizerTest, ConstantFeaturePassesThrough) {
  Matrix data{{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  Normalizer norm;
  norm.fit(data);
  const Matrix z = norm.transform(data);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
  const Matrix back = norm.inverse_transform(z);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(back(r, 0), 5.0);
}

TEST(NormalizerTest, InplaceMatchesMatrixVersion) {
  Matrix data{{1.0, -2.0}, {3.0, 4.0}, {-1.0, 0.0}};
  Normalizer norm;
  norm.fit(data);
  std::vector<double> x = {2.0, 1.0};
  Matrix m(1, 2);
  m.set_row(0, x);
  const Matrix z = norm.transform(m);
  norm.transform_inplace(x);
  EXPECT_NEAR(x[0], z(0, 0), 1e-12);
  EXPECT_NEAR(x[1], z(0, 1), 1e-12);
  norm.inverse_transform_inplace(x);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(NormalizerTest, FitOnEmptyThrows) {
  Normalizer norm;
  EXPECT_THROW(norm.fit(Matrix(0, 3)), std::invalid_argument);
  EXPECT_FALSE(norm.fitted());
}

}  // namespace
}  // namespace verihvac::nn
