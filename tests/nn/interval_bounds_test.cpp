#include "nn/interval_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace verihvac::nn {
namespace {

/// A Linear layer with hand-set weights for exact-arithmetic checks.
Linear make_linear(const std::vector<std::vector<double>>& w, const std::vector<double>& b) {
  Linear layer(w.front().size(), w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    layer.bias()(0, j) = b[j];
    for (std::size_t i = 0; i < w[j].size(); ++i) layer.weight()(j, i) = w[j][i];
  }
  return layer;
}

TEST(IntervalBoundsTest, LinearExactOnPositiveWeights) {
  // y = 2a + 3b + 1 on a in [0,1], b in [-1,2] -> [1-3, 2+6+1] = [-2, 9].
  const Linear layer = make_linear({{2.0, 3.0}}, {1.0});
  const auto out = propagate_linear(layer, {Interval{0.0, 1.0}, Interval{-1.0, 2.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].lo, -2.0);
  EXPECT_DOUBLE_EQ(out[0].hi, 9.0);
}

TEST(IntervalBoundsTest, LinearExactOnMixedWeights) {
  // y = a - 2b on a in [1,2], b in [0,3] -> [1-6, 2-0] = [-5, 2].
  const Linear layer = make_linear({{1.0, -2.0}}, {0.0});
  const auto out = propagate_linear(layer, {Interval{1.0, 2.0}, Interval{0.0, 3.0}});
  EXPECT_DOUBLE_EQ(out[0].lo, -5.0);
  EXPECT_DOUBLE_EQ(out[0].hi, 2.0);
}

TEST(IntervalBoundsTest, LinearRejectsDimensionMismatch) {
  const Linear layer = make_linear({{1.0, 1.0}}, {0.0});
  EXPECT_THROW(propagate_linear(layer, {Interval{0.0, 1.0}}), std::invalid_argument);
}

TEST(IntervalBoundsTest, ReluClampsAtZero) {
  const auto out = propagate_relu({Interval{-2.0, -1.0}, Interval{-1.0, 3.0}, Interval{1.0, 2.0}});
  EXPECT_DOUBLE_EQ(out[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(out[0].hi, 0.0);
  EXPECT_DOUBLE_EQ(out[1].lo, 0.0);
  EXPECT_DOUBLE_EQ(out[1].hi, 3.0);
  EXPECT_DOUBLE_EQ(out[2].lo, 1.0);
  EXPECT_DOUBLE_EQ(out[2].hi, 2.0);
}

TEST(IntervalBoundsTest, DegenerateBoxGivesPointEvaluation) {
  // A zero-width box must propagate to (numerically) the network's value.
  Mlp mlp({3, 8, 8, 1});
  Rng rng(4);
  mlp.init(rng);
  const std::vector<double> x = {0.3, -1.2, 2.0};
  std::vector<double> out, scratch;
  mlp.predict(x, out, scratch);
  const auto bounds = propagate_bounds(
      mlp, {Interval{x[0], x[0]}, Interval{x[1], x[1]}, Interval{x[2], x[2]}});
  EXPECT_NEAR(bounds[0].lo, out[0], 1e-12);
  EXPECT_NEAR(bounds[0].hi, out[0], 1e-12);
}

TEST(IntervalBoundsTest, RejectsWrongInputDim) {
  Mlp mlp({3, 4, 1});
  Rng rng(5);
  mlp.init(rng);
  EXPECT_THROW(propagate_bounds(mlp, {Interval{0.0, 1.0}}), std::invalid_argument);
}

TEST(IntervalBoundsTest, BoundsWidenMonotonicallyWithBoxWidth) {
  Mlp mlp({2, 16, 16, 1});
  Rng rng(6);
  mlp.init(rng);
  double prev_width = -1.0;
  for (double half : {0.1, 0.5, 1.0, 2.0}) {
    const auto bounds =
        propagate_bounds(mlp, {Interval{-half, half}, Interval{-half, half}});
    const double width = bounds[0].hi - bounds[0].lo;
    EXPECT_GT(width, prev_width);
    prev_width = width;
  }
}

// Soundness sweep: for random networks and random boxes, every sampled
// concrete evaluation lies inside the propagated bounds.
class IbpSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IbpSoundness, SampledOutputsLieWithinBounds) {
  Rng rng(GetParam());
  Mlp mlp({4, 12, 12, 2});
  mlp.init(rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Interval> box(4);
    for (auto& iv : box) {
      const double a = rng.uniform(-3.0, 3.0);
      const double b = rng.uniform(-3.0, 3.0);
      iv = Interval{std::min(a, b), std::max(a, b)};
    }
    const auto bounds = propagate_bounds(mlp, box);
    std::vector<double> x(4), out, scratch;
    for (int s = 0; s < 100; ++s) {
      for (std::size_t d = 0; d < 4; ++d) x[d] = rng.uniform(box[d].lo, box[d].hi);
      mlp.predict(x, out, scratch);
      for (std::size_t j = 0; j < out.size(); ++j) {
        EXPECT_GE(out[j], bounds[j].lo - 1e-9);
        EXPECT_LE(out[j], bounds[j].hi + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IbpSoundness, ::testing::Values(3u, 17u, 59u, 101u));

}  // namespace
}  // namespace verihvac::nn
