#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace verihvac::nn {
namespace {

TEST(LossTest, MseOfEqualIsZero) {
  Matrix a{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(mse_loss(a, a), 0.0);
}

TEST(LossTest, MseMatchesHandComputation) {
  Matrix pred{{1.0}, {3.0}};
  Matrix target{{0.0}, {1.0}};
  // ((1)^2 + (2)^2) / 2 = 2.5
  EXPECT_DOUBLE_EQ(mse_loss(pred, target), 2.5);
}

TEST(LossTest, GradientPointsTowardTarget) {
  Matrix pred{{2.0}};
  Matrix target{{0.0}};
  const Matrix grad = mse_gradient(pred, target);
  EXPECT_DOUBLE_EQ(grad(0, 0), 4.0);  // 2*(2-0)/1
}

TEST(TrainerTest, LearnsLinearFunction) {
  // y = 2 x0 - x1 + 0.5: an MLP with ReLU should fit this easily.
  Rng rng(3);
  const std::size_t n = 400;
  Matrix x(n, 2);
  Matrix y(n, 1);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = rng.uniform(-1.0, 1.0);
    x(r, 1) = rng.uniform(-1.0, 1.0);
    y(r, 0) = 2.0 * x(r, 0) - x(r, 1) + 0.5;
  }
  Mlp net({2, 16, 1});
  Rng init(4);
  net.init(init);
  TrainerConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 32;
  cfg.adam.learning_rate = 1e-2;
  const TrainingReport report = train(net, x, y, cfg);
  EXPECT_LT(report.final_train_loss, 1e-3);
  EXPECT_LT(report.final_val_loss, 5e-3);
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  Rng rng(5);
  Matrix x(200, 1);
  Matrix y(200, 1);
  for (std::size_t r = 0; r < 200; ++r) {
    x(r, 0) = rng.uniform(-2.0, 2.0);
    y(r, 0) = std::sin(x(r, 0));
  }
  Mlp net({1, 16, 16, 1});
  Rng init(6);
  net.init(init);
  TrainerConfig cfg;
  cfg.epochs = 100;
  cfg.adam.learning_rate = 5e-3;
  const TrainingReport report = train(net, x, y, cfg);
  ASSERT_EQ(report.train_loss_per_epoch.size(), 100u);
  EXPECT_LT(report.train_loss_per_epoch.back(), report.train_loss_per_epoch.front() * 0.5);
}

TEST(TrainerTest, ReportHistoriesHaveEpochLength) {
  Matrix x(50, 1, 1.0);
  Matrix y(50, 1, 2.0);
  Mlp net({1, 4, 1});
  Rng init(7);
  net.init(init);
  TrainerConfig cfg;
  cfg.epochs = 5;
  const TrainingReport report = train(net, x, y, cfg);
  EXPECT_EQ(report.train_loss_per_epoch.size(), 5u);
  EXPECT_EQ(report.val_loss_per_epoch.size(), 5u);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  Rng rng(9);
  Matrix x(100, 2);
  Matrix y(100, 1);
  for (std::size_t r = 0; r < 100; ++r) {
    x(r, 0) = rng.uniform(-1.0, 1.0);
    x(r, 1) = rng.uniform(-1.0, 1.0);
    y(r, 0) = x(r, 0) * x(r, 1);
  }
  auto run = [&]() {
    Mlp net({2, 8, 1});
    Rng init(10);
    net.init(init);
    TrainerConfig cfg;
    cfg.epochs = 20;
    return train(net, x, y, cfg).final_train_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, ZeroValidationFractionUsesTrainLoss) {
  Matrix x(20, 1, 1.0);
  Matrix y(20, 1, 0.0);
  Mlp net({1, 1});
  Rng init(11);
  net.init(init);
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.validation_fraction = 0.0;
  const TrainingReport report = train(net, x, y, cfg);
  EXPECT_EQ(report.val_loss_per_epoch.size(), 3u);
}

TEST(TrainerTest, RejectsEmptyOrMismatched) {
  Mlp net({1, 1});
  TrainerConfig cfg;
  EXPECT_THROW(train(net, Matrix(0, 1), Matrix(0, 1), cfg), std::invalid_argument);
  EXPECT_THROW(train(net, Matrix(3, 1), Matrix(4, 1), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace verihvac::nn
