#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace verihvac::nn {
namespace {

TEST(LinearTest, ForwardMatchesHandComputation) {
  Linear layer(2, 3);
  // W = [[1,2],[3,4],[5,6]], b = [0.1, 0.2, 0.3].
  layer.weight() = Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  layer.bias() = Matrix{{0.1, 0.2, 0.3}};
  const Matrix out = layer.forward(Matrix{{1.0, 1.0}});
  EXPECT_NEAR(out(0, 0), 3.1, 1e-12);
  EXPECT_NEAR(out(0, 1), 7.2, 1e-12);
  EXPECT_NEAR(out(0, 2), 11.3, 1e-12);
}

TEST(LinearTest, ForwardBatched) {
  Linear layer(2, 1);
  layer.weight() = Matrix{{2.0, -1.0}};
  layer.bias() = Matrix{{0.5}};
  const Matrix out = layer.forward(Matrix{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  EXPECT_NEAR(out(0, 0), 2.5, 1e-12);
  EXPECT_NEAR(out(1, 0), -0.5, 1e-12);
  EXPECT_NEAR(out(2, 0), 1.5, 1e-12);
}

TEST(LinearTest, BackwardGradientsNumerically) {
  // Central-difference check of dL/dW, dL/db and dL/dX with L = sum(Y).
  Rng rng(3);
  Linear layer(3, 2);
  layer.init(rng);
  Matrix x{{0.3, -0.7, 1.2}, {0.9, 0.1, -0.4}};

  layer.zero_grad();
  layer.forward(x);
  Matrix grad_out(2, 2, 1.0);  // dL/dY = 1
  const Matrix grad_in = layer.backward(grad_out);

  constexpr double kEps = 1e-6;
  auto loss = [&](Linear& l, const Matrix& input) {
    const Matrix y = l.forward(input);
    double sum = 0.0;
    for (double v : y.data()) sum += v;
    return sum;
  };

  // dL/dW numeric.
  for (std::size_t i = 0; i < layer.weight().data().size(); ++i) {
    Linear plus = layer;
    Linear minus = layer;
    plus.weight().data()[i] += kEps;
    minus.weight().data()[i] -= kEps;
    const double numeric = (loss(plus, x) - loss(minus, x)) / (2 * kEps);
    EXPECT_NEAR(layer.weight_grad().data()[i], numeric, 1e-5);
  }
  // dL/db numeric.
  for (std::size_t i = 0; i < layer.bias().data().size(); ++i) {
    Linear plus = layer;
    Linear minus = layer;
    plus.bias().data()[i] += kEps;
    minus.bias().data()[i] -= kEps;
    const double numeric = (loss(plus, x) - loss(minus, x)) / (2 * kEps);
    EXPECT_NEAR(layer.bias_grad().data()[i], numeric, 1e-5);
  }
  // dL/dX numeric.
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    Matrix xp = x;
    Matrix xm = x;
    xp.data()[i] += kEps;
    xm.data()[i] -= kEps;
    Linear copy = layer;
    const double numeric = (loss(copy, xp) - loss(copy, xm)) / (2 * kEps);
    EXPECT_NEAR(grad_in.data()[i], numeric, 1e-5);
  }
}

TEST(LinearTest, GradientsAccumulateUntilZeroed) {
  Linear layer(1, 1);
  layer.weight() = Matrix{{1.0}};
  layer.bias() = Matrix{{0.0}};
  Matrix x{{2.0}};
  Matrix g{{1.0}};
  layer.zero_grad();
  layer.forward(x);
  layer.backward(g);
  layer.forward(x);
  layer.backward(g);
  EXPECT_NEAR(layer.weight_grad()(0, 0), 4.0, 1e-12);  // 2 + 2
  layer.zero_grad();
  EXPECT_DOUBLE_EQ(layer.weight_grad()(0, 0), 0.0);
}

TEST(LinearTest, InitBoundsFollowFanIn) {
  Rng rng(17);
  Linear layer(100, 10);
  layer.init(rng);
  const double bound = std::sqrt(1.0 / 100.0);
  for (double w : layer.weight().data()) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  const Matrix out = relu.forward(Matrix{{-1.0, 0.0, 2.5}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 2.5);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu relu;
  relu.forward(Matrix{{-1.0, 3.0}});
  const Matrix grad = relu.backward(Matrix{{10.0, 10.0}});
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 10.0);
}

}  // namespace
}  // namespace verihvac::nn
