#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace verihvac::nn {
namespace {

TEST(AdamTest, SingleStepMagnitudeIsLearningRate) {
  // With a fresh optimizer, the bias-corrected first step has magnitude
  // ~= lr * sign(grad) regardless of gradient scale.
  Mlp net({1, 1});
  net.set_parameters({1.0, 0.0});  // w=1, b=0
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.weight_decay = 0.0;
  Adam adam(net, cfg);

  net.zero_grad();
  net.layers()[0].weight_grad()(0, 0) = 123.0;  // large positive gradient
  adam.step();
  EXPECT_NEAR(net.parameters()[0], 1.0 - 0.01, 1e-6);
}

TEST(AdamTest, DescendsQuadraticBowl) {
  // Minimize (w - 3)^2 with gradient 2(w - 3).
  Mlp net({1, 1});
  net.set_parameters({0.0, 0.0});
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.weight_decay = 0.0;
  Adam adam(net, cfg);
  for (int i = 0; i < 300; ++i) {
    net.zero_grad();
    const double w = net.parameters()[0];
    net.layers()[0].weight_grad()(0, 0) = 2.0 * (w - 3.0);
    adam.step();
  }
  EXPECT_NEAR(net.parameters()[0], 3.0, 0.05);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Mlp net({1, 1});
  net.set_parameters({5.0, 0.0});
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.weight_decay = 1.0;  // exaggerated to observe the effect
  Adam adam(net, cfg);
  for (int i = 0; i < 200; ++i) {
    net.zero_grad();  // zero task gradient: only decay acts
    adam.step();
  }
  EXPECT_LT(std::abs(net.parameters()[0]), 0.5);
}

TEST(AdamTest, StepCounterAdvances) {
  Mlp net({1, 1});
  Adam adam(net);
  EXPECT_EQ(adam.steps_taken(), 0u);
  net.zero_grad();
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 2u);
}

TEST(AdamTest, DefaultConfigMatchesPaper) {
  const AdamConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.weight_decay, 1e-5);
}

}  // namespace
}  // namespace verihvac::nn
