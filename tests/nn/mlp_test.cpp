#include "nn/mlp.hpp"

#include <gtest/gtest.h>

namespace verihvac::nn {
namespace {

TEST(MlpTest, ArchitectureDimensions) {
  Mlp net({8, 32, 32, 1});
  EXPECT_EQ(net.input_dim(), 8u);
  EXPECT_EQ(net.output_dim(), 1u);
  // 8*32+32 + 32*32+32 + 32*1+1 = 288 + 1056 + 33.
  EXPECT_EQ(net.parameter_count(), 1377u);
}

TEST(MlpTest, RejectsDegenerateWidths) {
  EXPECT_THROW(Mlp({5}), std::invalid_argument);
}

TEST(MlpTest, ForwardShape) {
  Mlp net({4, 8, 2});
  Rng rng(1);
  net.init(rng);
  const Matrix out = net.forward(Matrix(7, 4, 0.5));
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(MlpTest, PredictMatchesBatchedForward) {
  Mlp net({6, 16, 16, 1});
  Rng rng(5);
  net.init(rng);
  std::vector<double> x = {0.1, -0.5, 2.0, 0.0, -1.0, 0.7};
  Matrix batch(1, 6);
  batch.set_row(0, x);
  const Matrix batched = net.forward(batch);

  std::vector<double> out;
  std::vector<double> scratch;
  net.predict(x, out, scratch);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], batched(0, 0), 1e-12);
}

TEST(MlpTest, PredictSingleLayerNetwork) {
  Mlp net({3, 2});
  Rng rng(6);
  net.init(rng);
  std::vector<double> x = {1.0, 2.0, 3.0};
  Matrix batch(1, 3);
  batch.set_row(0, x);
  const Matrix expect = net.forward(batch);
  std::vector<double> out;
  std::vector<double> scratch;
  net.predict(x, out, scratch);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], expect(0, 0), 1e-12);
  EXPECT_NEAR(out[1], expect(0, 1), 1e-12);
}

TEST(MlpTest, PredictIsRepeatableWithReusedScratch) {
  Mlp net({6, 16, 1});
  Rng rng(7);
  net.init(rng);
  std::vector<double> out1;
  std::vector<double> out2;
  std::vector<double> scratch;
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  net.predict(x, out1, scratch);
  const double first = out1[0];
  for (int i = 0; i < 10; ++i) net.predict(x, out2, scratch);
  EXPECT_DOUBLE_EQ(out2[0], first);
}

TEST(MlpTest, ForwardIntoBitIdenticalToScalarPredict) {
  // The lock-step rollout engine's core contract: batched inference must
  // reproduce the scalar predict hot path to the last bit, for every row
  // position in the row-blocked thin-layer kernel (kRows = 8 in
  // Linear::forward_into, so sizes below/at/above 8 cover the remainder
  // rows) and the register-tiled wide-layer kernel.
  Mlp net({8, 32, 32, 1});
  Rng rng(21);
  net.init(rng);

  for (std::size_t batch_size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 33u}) {
    Matrix batch(batch_size, 8);
    Rng data_rng(100 + batch_size);
    for (double& v : batch.data()) v = data_rng.uniform(-3.0, 3.0);

    BatchScratch scratch;
    Matrix out;
    net.forward_into(batch, out, scratch);
    ASSERT_EQ(out.rows(), batch_size);
    ASSERT_EQ(out.cols(), 1u);

    std::vector<double> scalar_out;
    std::vector<double> scalar_scratch;
    for (std::size_t r = 0; r < batch_size; ++r) {
      net.predict(batch.row(r), scalar_out, scalar_scratch);
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: exact equality, no ULP slack.
      EXPECT_EQ(out(r, 0), scalar_out[0]) << "batch " << batch_size << " row " << r;
    }
  }
}

TEST(MlpTest, ForwardIntoMatchesTrainingForward) {
  Mlp net({6, 16, 16, 2});
  Rng rng(23);
  net.init(rng);
  Matrix batch(9, 6);
  for (double& v : batch.data()) v = rng.uniform(-2.0, 2.0);

  const Matrix train_path = net.forward(batch);
  BatchScratch scratch;
  Matrix out;
  net.forward_into(batch, out, scratch);
  ASSERT_EQ(out.rows(), train_path.rows());
  ASSERT_EQ(out.cols(), train_path.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], train_path.data()[i], 1e-12);
  }
}

TEST(MlpTest, ForwardIntoReusedScratchIsDeterministic) {
  Mlp net({4, 8, 1});
  Rng rng(29);
  net.init(rng);
  Matrix big(40, 4);
  for (double& v : big.data()) v = rng.uniform(-1.0, 1.0);
  Matrix small(3, 4);
  for (double& v : small.data()) v = rng.uniform(-1.0, 1.0);

  BatchScratch scratch;
  Matrix out_big1;
  Matrix out_small;
  Matrix out_big2;
  net.forward_into(big, out_big1, scratch);
  net.forward_into(small, out_small, scratch);  // shrink: buffers reused
  net.forward_into(big, out_big2, scratch);     // grow back
  ASSERT_EQ(out_big2.rows(), out_big1.rows());
  for (std::size_t i = 0; i < out_big1.size(); ++i) {
    EXPECT_EQ(out_big1.data()[i], out_big2.data()[i]);
  }
}

TEST(MlpTest, BackwardGradientNumerically) {
  // Full-network gradient check on a tiny MLP with L = sum(outputs).
  Mlp net({2, 4, 1});
  Rng rng(11);
  net.init(rng);
  Matrix x{{0.5, -0.3}, {1.0, 0.2}};

  net.zero_grad();
  net.forward(x);
  net.backward(Matrix(2, 1, 1.0));

  auto loss = [&x](Mlp& m) {
    const Matrix y = m.forward(x);
    double sum = 0.0;
    for (double v : y.data()) sum += v;
    return sum;
  };

  const auto params = net.parameters();
  constexpr double kEps = 1e-6;
  // Collect analytic gradients layer by layer in the same flat order.
  std::vector<double> analytic;
  for (auto& layer : net.layers()) {
    for (double g : layer.weight_grad().data()) analytic.push_back(g);
    for (double g : layer.bias_grad().data()) analytic.push_back(g);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto plus = params;
    auto minus = params;
    plus[i] += kEps;
    minus[i] -= kEps;
    Mlp copy({2, 4, 1});
    copy.set_parameters(plus);
    const double lp = loss(copy);
    copy.set_parameters(minus);
    const double lm = loss(copy);
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * kEps), 1e-5) << "param " << i;
  }
}

TEST(MlpTest, ParameterRoundTrip) {
  Mlp a({3, 5, 2});
  Rng rng(13);
  a.init(rng);
  Mlp b({3, 5, 2});
  b.set_parameters(a.parameters());
  Matrix x(1, 3);
  x.set_row(0, {0.1, 0.2, 0.3});
  const Matrix ya = a.forward(x);
  const Matrix yb = b.forward(x);
  EXPECT_DOUBLE_EQ(ya(0, 0), yb(0, 0));
  EXPECT_DOUBLE_EQ(ya(0, 1), yb(0, 1));
}

TEST(MlpTest, SetParametersRejectsWrongSize) {
  Mlp net({2, 2});
  EXPECT_THROW(net.set_parameters({1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace verihvac::nn
