#include "weather/weather_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace verihvac::weather {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "verihvac_weather_io";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

TEST(WeatherIoTest, RoundTripPreservesRecords) {
  WeatherGenerator g(pittsburgh(), 55);
  const WeatherSeries original = g.generate_days(2);
  const std::string path = temp_path("series.csv");
  save_series_csv(original, path);
  const WeatherSeries loaded = load_series_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.at(i).outdoor_temp_c, original.at(i).outdoor_temp_c, 1e-6);
    EXPECT_NEAR(loaded.at(i).humidity_pct, original.at(i).humidity_pct, 1e-6);
    EXPECT_NEAR(loaded.at(i).wind_mps, original.at(i).wind_mps, 1e-6);
    EXPECT_NEAR(loaded.at(i).solar_wm2, original.at(i).solar_wm2, 1e-6);
  }
}

TEST(WeatherIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_series_csv("/no/such/file.csv"), std::runtime_error);
}

TEST(WeatherIoTest, EmptySeriesRoundTrips) {
  WeatherSeries empty;
  const std::string path = temp_path("empty.csv");
  save_series_csv(empty, path);
  const WeatherSeries loaded = load_series_csv(path);
  EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace verihvac::weather
