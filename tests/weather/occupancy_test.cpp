#include "weather/occupancy.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace verihvac::weather {
namespace {

// Day 0 of the schedule is a Friday (first_weekday = 4); days 1 and 2 are
// the weekend.
constexpr std::size_t kFriday10am = 10 * kStepsPerHour;
constexpr std::size_t kSaturday10am = kStepsPerDay + 10 * kStepsPerHour;
constexpr std::size_t kMonday10am = 3 * kStepsPerDay + 10 * kStepsPerHour;

TEST(OccupancyTest, OfficeHoursOccupiedOnWeekdays) {
  const OccupancySchedule s = office_schedule();
  EXPECT_GT(s.occupants_at(kFriday10am), 0.0);
  EXPECT_GT(s.occupants_at(kMonday10am), 0.0);
}

TEST(OccupancyTest, NightsEmpty) {
  const OccupancySchedule s = office_schedule();
  EXPECT_DOUBLE_EQ(s.occupants_at(0), 0.0);                       // midnight
  EXPECT_DOUBLE_EQ(s.occupants_at(23 * kStepsPerHour), 0.0);      // 11 pm
  EXPECT_DOUBLE_EQ(s.occupants_at(7 * kStepsPerHour + 3), 0.0);   // 7:45 am
}

TEST(OccupancyTest, WeekendEmptyByDefault) {
  const OccupancySchedule s = office_schedule();
  EXPECT_DOUBLE_EQ(s.occupants_at(kSaturday10am), 0.0);
}

TEST(OccupancyTest, WeekendFractionApplies) {
  OccupancySchedule s = office_schedule();
  s.weekend_fraction = 0.5;
  EXPECT_NEAR(s.occupants_at(kSaturday10am), s.peak_occupants * 0.5, 1e-9);
}

TEST(OccupancyTest, PeakReachedMidday) {
  const OccupancySchedule s = office_schedule();
  EXPECT_DOUBLE_EQ(s.occupants_at(kFriday10am), s.peak_occupants);
}

TEST(OccupancyTest, DefaultScheduleIsStepwise) {
  const OccupancySchedule s = office_schedule();
  // The Sinergym-style default has no ramp: full presence from the first
  // occupied step to the last.
  EXPECT_DOUBLE_EQ(s.occupants_at(8 * kStepsPerHour), s.peak_occupants);
  EXPECT_DOUBLE_EQ(s.occupants_at(19 * kStepsPerHour + 3), s.peak_occupants);
  EXPECT_DOUBLE_EQ(s.occupants_at(20 * kStepsPerHour), 0.0);
}

TEST(OccupancyTest, OptionalRampAtBusinessDayEdges) {
  OccupancySchedule s = office_schedule();
  s.ramp_hours = 1.0;
  // 8:15 is inside the arrival ramp: more than none, less than peak.
  const double arriving = s.occupants_at(8 * kStepsPerHour + 1);
  EXPECT_GT(arriving, 0.0);
  EXPECT_LT(arriving, s.peak_occupants);
  // 19:45 is inside the departure ramp.
  const double leaving = s.occupants_at(19 * kStepsPerHour + 3);
  EXPECT_GT(leaving, 0.0);
  EXPECT_LT(leaving, s.peak_occupants);
}

TEST(OccupancyTest, OccupiedAtMatchesCount) {
  const OccupancySchedule s = office_schedule();
  EXPECT_TRUE(s.occupied_at(kFriday10am));
  EXPECT_FALSE(s.occupied_at(0));
}

TEST(OccupancyTest, SeriesLengthAndConsistency) {
  const OccupancySchedule s = office_schedule();
  const auto series = s.series(5 * kStepsPerDay);
  ASSERT_EQ(series.size(), static_cast<std::size_t>(5 * kStepsPerDay));
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i], s.occupants_at(i));
  }
}

TEST(OccupancyTest, WeekPatternRepeats) {
  const OccupancySchedule s = office_schedule();
  for (std::size_t step = 0; step < kStepsPerDay; ++step) {
    EXPECT_DOUBLE_EQ(s.occupants_at(step), s.occupants_at(step + 7 * kStepsPerDay));
  }
}

TEST(OccupancyTest, FirstWeekdayShiftsWeekend) {
  OccupancySchedule s = office_schedule();
  s.first_weekday = 5;  // day 0 is Saturday
  EXPECT_DOUBLE_EQ(s.occupants_at(kFriday10am), 0.0);  // actually Saturday now
  EXPECT_GT(s.occupants_at(2 * kStepsPerDay + kFriday10am), 0.0);  // Monday
}

}  // namespace
}  // namespace verihvac::weather
