#include "weather/climate.hpp"

#include <gtest/gtest.h>

namespace verihvac::weather {
namespace {

TEST(ClimateTest, PittsburghIsCold4A) {
  const ClimateProfile p = pittsburgh();
  EXPECT_EQ(p.zone, ClimateZone::k4A);
  EXPECT_LT(p.mean_temp_c, 2.0);
  EXPECT_GT(p.mean_cloud_cover, 0.5);
}

TEST(ClimateTest, TucsonIsMildSunny2B) {
  const ClimateProfile p = tucson();
  EXPECT_EQ(p.zone, ClimateZone::k2B);
  EXPECT_GT(p.mean_temp_c, 8.0);
  EXPECT_LT(p.mean_cloud_cover, 0.4);
  EXPECT_GT(p.clear_sky_peak, pittsburgh().clear_sky_peak);
}

TEST(ClimateTest, NewYorkSharesPittsburghClimateZone) {
  // The Fig. 3 calibration depends on NY being a "similar city" (same
  // ASHRAE class, close climate normals) to Pittsburgh.
  const ClimateProfile ny = new_york();
  const ClimateProfile pit = pittsburgh();
  EXPECT_EQ(ny.zone, pit.zone);
  EXPECT_NEAR(ny.mean_temp_c, pit.mean_temp_c, 3.0);
  EXPECT_NEAR(ny.mean_cloud_cover, pit.mean_cloud_cover, 0.15);
}

TEST(ClimateTest, LookupByNameIsCaseInsensitive) {
  EXPECT_EQ(profile_by_name("pittsburgh").name, "Pittsburgh");
  EXPECT_EQ(profile_by_name("TUCSON").name, "Tucson");
  EXPECT_EQ(profile_by_name("NewYork").name, "NewYork");
  EXPECT_EQ(profile_by_name("new york").name, "NewYork");
  EXPECT_EQ(profile_by_name("TucsonJuly").name, "TucsonJuly");
  EXPECT_EQ(profile_by_name("tucson_july").name, "TucsonJuly");
}

TEST(ClimateTest, UnknownCityThrows) {
  EXPECT_THROW(profile_by_name("Atlantis"), std::invalid_argument);
}

TEST(ClimateTest, AvailableProfilesResolve) {
  for (const auto& name : available_profiles()) {
    EXPECT_NO_THROW(profile_by_name(name));
  }
}

TEST(ClimateTest, ZoneToString) {
  EXPECT_EQ(to_string(ClimateZone::k2B), "2B");
  EXPECT_EQ(to_string(ClimateZone::k4A), "4A");
}

TEST(ClimateTest, SummerProfileIsCoolingSeason) {
  const ClimateProfile july = tucson_july();
  const ClimateProfile january = tucson();
  // Same city, opposite season: hotter mean, higher sun, same zone tag.
  EXPECT_GT(july.mean_temp_c, january.mean_temp_c + 15.0);
  EXPECT_GT(july.clear_sky_peak, january.clear_sky_peak);
  EXPECT_EQ(july.zone, january.zone);
}

}  // namespace
}  // namespace verihvac::weather
