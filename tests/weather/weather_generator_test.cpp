#include "weather/weather_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace verihvac::weather {
namespace {

TEST(WeatherGeneratorTest, DeterministicForSameSeed) {
  WeatherGenerator g1(pittsburgh(), 99);
  WeatherGenerator g2(pittsburgh(), 99);
  const auto s1 = g1.generate_days(2);
  const auto s2 = g2.generate_days(2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.at(i).outdoor_temp_c, s2.at(i).outdoor_temp_c);
    EXPECT_DOUBLE_EQ(s1.at(i).solar_wm2, s2.at(i).solar_wm2);
  }
}

TEST(WeatherGeneratorTest, DifferentSeedsProduceDifferentSeries) {
  WeatherGenerator g1(pittsburgh(), 1);
  WeatherGenerator g2(pittsburgh(), 2);
  const auto s1 = g1.generate_days(1);
  const auto s2 = g2.generate_days(1);
  double diff = 0.0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    diff += std::abs(s1.at(i).outdoor_temp_c - s2.at(i).outdoor_temp_c);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(WeatherGeneratorTest, SeriesLengthMatchesDays) {
  WeatherGenerator g(tucson(), 5);
  EXPECT_EQ(g.generate_days(31).size(), static_cast<std::size_t>(31 * kStepsPerDay));
}

TEST(WeatherGeneratorTest, MonthlyMeanTracksClimateNormal) {
  WeatherGenerator g(pittsburgh(), 7);
  const auto series = g.generate_days(31);
  RunningStats temps;
  for (const auto& r : series.records) temps.add(r.outdoor_temp_c);
  EXPECT_NEAR(temps.mean(), pittsburgh().mean_temp_c, 2.5);
}

TEST(WeatherGeneratorTest, TucsonWarmerThanPittsburgh) {
  const auto pit = WeatherGenerator(pittsburgh(), 11).generate_days(14);
  const auto tuc = WeatherGenerator(tucson(), 11).generate_days(14);
  RunningStats p;
  RunningStats t;
  for (const auto& r : pit.records) p.add(r.outdoor_temp_c);
  for (const auto& r : tuc.records) t.add(r.outdoor_temp_c);
  EXPECT_GT(t.mean(), p.mean() + 6.0);
}

TEST(WeatherGeneratorTest, SolarZeroAtNightPositiveAtNoon) {
  WeatherGenerator g(tucson(), 3);
  const auto series = g.generate_days(7);
  for (int day = 0; day < 7; ++day) {
    const std::size_t midnight = static_cast<std::size_t>(day) * kStepsPerDay;
    const std::size_t noon = midnight + 48;
    EXPECT_DOUBLE_EQ(series.at(midnight).solar_wm2, 0.0);
    EXPECT_GT(series.at(noon).solar_wm2, 50.0);
  }
}

TEST(WeatherGeneratorTest, TucsonSunnierThanPittsburgh) {
  const auto pit = WeatherGenerator(pittsburgh(), 13).generate_days(14);
  const auto tuc = WeatherGenerator(tucson(), 13).generate_days(14);
  double pit_solar = 0.0;
  double tuc_solar = 0.0;
  for (const auto& r : pit.records) pit_solar += r.solar_wm2;
  for (const auto& r : tuc.records) tuc_solar += r.solar_wm2;
  EXPECT_GT(tuc_solar, 1.5 * pit_solar);
}

TEST(WeatherGeneratorTest, HumidityWithinPhysicalBounds) {
  WeatherGenerator g(pittsburgh(), 17);
  const auto series = g.generate_days(31);
  for (const auto& r : series.records) {
    EXPECT_GE(r.humidity_pct, 5.0);
    EXPECT_LE(r.humidity_pct, 100.0);
  }
}

TEST(WeatherGeneratorTest, WindNonNegative) {
  WeatherGenerator g(new_york(), 19);
  const auto series = g.generate_days(31);
  for (const auto& r : series.records) EXPECT_GE(r.wind_mps, 0.0);
}

TEST(WeatherGeneratorTest, DiurnalCycleVisible) {
  // Average 3pm temperature should exceed average 6am temperature by a
  // margin related to the diurnal amplitude.
  WeatherGenerator g(tucson(), 23);
  const auto series = g.generate_days(31);
  RunningStats at6;
  RunningStats at15;
  for (int day = 0; day < 31; ++day) {
    at6.add(series.at(static_cast<std::size_t>(day) * kStepsPerDay + 24).outdoor_temp_c);
    at15.add(series.at(static_cast<std::size_t>(day) * kStepsPerDay + 60).outdoor_temp_c);
  }
  EXPECT_GT(at15.mean() - at6.mean(), tucson().diurnal_amp_c);
}

TEST(WeatherGeneratorTest, DaylightShorterAtHigherLatitude) {
  const auto [pit_rise, pit_set] = WeatherGenerator::daylight_hours(pittsburgh());
  const auto [tuc_rise, tuc_set] = WeatherGenerator::daylight_hours(tucson());
  EXPECT_LT(pit_set - pit_rise, tuc_set - tuc_rise);
}

TEST(WeatherGeneratorTest, StartDayShiftsSeries) {
  WeatherGenerator g(pittsburgh(), 29);
  const auto a = g.generate(0, kStepsPerDay);
  const auto b = g.generate(5, kStepsPerDay);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a.at(i).outdoor_temp_c - b.at(i).outdoor_temp_c);
  }
  EXPECT_GT(diff, 0.5);
}

/// Stationarity sweep: the synoptic OU residual should not drift over the
/// month for any seed.
class WeatherStationarityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeatherStationarityTest, FirstAndSecondHalfMeansAgree) {
  WeatherGenerator g(pittsburgh(), GetParam());
  const auto series = g.generate_days(30);
  RunningStats first;
  RunningStats second;
  for (std::size_t i = 0; i < series.size(); ++i) {
    (i < series.size() / 2 ? first : second).add(series.at(i).outdoor_temp_c);
  }
  // Half-month means of an OU process with a 36 h time constant have a
  // standard deviation of roughly 1.5 degC each; 6.5 degC is a >3-sigma
  // bound on their difference.
  EXPECT_NEAR(first.mean(), second.mean(), 6.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeatherStationarityTest,
                         ::testing::Values(1ull, 7ull, 2021ull, 424242ull));

}  // namespace
}  // namespace verihvac::weather
