#include "control/rollout_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "control/cem.hpp"
#include "control/mppi.hpp"
#include "control/random_shooting.hpp"

namespace verihvac::control {
namespace {

TEST(RolloutEngineTest, CoversEveryIndexExactlyOnce) {
  RolloutEngine engine({/*threads=*/4, /*min_parallel_batch=*/1});
  for (std::size_t n : {0u, 1u, 3u, 16u, 100u, 1013u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    engine.parallel_for(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(RolloutEngineTest, WorkerIdsStayInRange) {
  RolloutEngine engine({/*threads=*/4, /*min_parallel_batch=*/1});
  std::atomic<bool> out_of_range{false};
  engine.parallel_for(256, [&](std::size_t worker, std::size_t, std::size_t) {
    if (worker >= engine.thread_count()) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(RolloutEngineTest, SmallBatchRunsInlineOnCaller) {
  RolloutEngine engine({/*threads=*/4, /*min_parallel_batch=*/64});
  std::vector<std::size_t> workers;
  engine.parallel_for(8, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    // Inline path: single invocation covering the whole range on worker 0.
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 8u);
    workers.push_back(worker);
  });
  EXPECT_EQ(workers.size(), 1u);
}

TEST(RolloutEngineTest, SingleThreadConfigSpawnsNoWorkers) {
  RolloutEngine engine({/*threads=*/1, /*min_parallel_batch=*/1});
  EXPECT_EQ(engine.thread_count(), 1u);
  int calls = 0;
  engine.parallel_for(32, [&](std::size_t, std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(end - begin, 32u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(RolloutEngineTest, PropagatesExceptionsFromWorkers) {
  RolloutEngine engine({/*threads=*/4, /*min_parallel_batch=*/1});
  EXPECT_THROW(
      engine.parallel_for(128,
                          [&](std::size_t, std::size_t begin, std::size_t) {
                            if (begin == 0) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must survive a throwing batch and keep serving work.
  std::atomic<std::size_t> covered{0};
  engine.parallel_for(64, [&](std::size_t, std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(RolloutEngineTest, SharedEngineIsReused) {
  const auto a = RolloutEngine::shared();
  const auto b = RolloutEngine::shared();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(a->thread_count(), 1u);
}

/// Fixture with a tiny trained dynamics model (same recipe as cem_test).
class ParallelRolloutTest : public ::testing::Test {
 protected:
  static double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
    const double t = x[env::kZoneTemp];
    double dt = 0.08 * (x[env::kOutdoorTemp] - t);
    if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 1.2);
    if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
    return t + dt;
  }

  static const dyn::DynamicsModel& model() {
    static dyn::DynamicsModel* instance = [] {
      Rng rng(1);
      dyn::TransitionDataset data;
      for (int i = 0; i < 1500; ++i) {
        dyn::Transition t;
        t.input = {rng.uniform(14.0, 28.0), rng.uniform(-8.0, 12.0), 50.0, 3.0,
                   rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
        t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
        t.action.cooling_c = static_cast<double>(
            rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
        t.next_zone_temp = toy_plant(t.input, t.action);
        data.add(t);
      }
      dyn::DynamicsModelConfig cfg;
      cfg.hidden = {16, 16};
      cfg.trainer.epochs = 30;
      cfg.trainer.adam.learning_rate = 3e-3;
      auto* m = new dyn::DynamicsModel(cfg);
      m->train(data);
      return m;
    }();
    return *instance;
  }

  static env::Observation cold_occupied() {
    env::Observation obs;
    obs.zone_temp_c = 17.5;
    obs.weather.outdoor_temp_c = -5.0;
    obs.weather.humidity_pct = 50.0;
    obs.weather.wind_mps = 3.0;
    obs.occupants = 11.0;
    return obs;
  }

  static std::vector<env::Disturbance> persistence_forecast(const env::Observation& obs,
                                                            std::size_t h) {
    env::Disturbance d;
    d.weather = obs.weather;
    d.occupants = obs.occupants;
    return std::vector<env::Disturbance>(h, d);
  }

  static std::shared_ptr<const RolloutEngine> four_threads() {
    static const auto engine = std::make_shared<const RolloutEngine>(
        RolloutEngineConfig{/*threads=*/4, /*min_parallel_batch=*/1});
    return engine;
  }

  /// Engines for the VERI_HVAC_THREADS=1/4/8 identity sweeps.
  static std::shared_ptr<const RolloutEngine> engine_with_threads(std::size_t threads) {
    return std::make_shared<const RolloutEngine>(
        RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
  }
};

TEST_F(ParallelRolloutTest, ScratchPredictMatchesMemberScratchPredict) {
  const env::Observation obs = cold_occupied();
  const std::vector<double> x = obs.to_vector();
  dyn::PredictScratch scratch;
  for (double heat : {15.0, 19.0, 23.0}) {
    const sim::SetpointPair action{heat, heat + 7.0};
    EXPECT_DOUBLE_EQ(model().predict(x, action), model().predict(x, action, scratch));
  }
}

TEST_F(ParallelRolloutTest, BatchReturnsMatchSerialReturns) {
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{1, 6, 0.99}, actions, env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);

  Rng rng(7);
  std::vector<std::vector<std::size_t>> sequences(40, std::vector<std::size_t>(6));
  for (auto& seq : sequences) {
    for (auto& a : seq) a = rng.index(actions.size());
  }

  std::vector<double> serial(sequences.size());
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    serial[s] = rs.rollout_return(model(), obs, forecast, sequences[s]);
  }

  rs.set_engine(four_threads());
  std::vector<double> parallel;
  rs.rollout_returns(model(), obs, forecast, sequences, parallel);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_DOUBLE_EQ(parallel[s], serial[s]) << "sequence " << s;
  }
}

TEST_F(ParallelRolloutTest, BatchedSliceBitIdenticalToScalarRolloutForAnySlicing) {
  // The lock-step kernel's per-candidate arithmetic must be independent of
  // how the batch is sliced into sub-batches — that is what makes the
  // sharded path thread-count invariant.
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{1, 5, 0.97}, actions, env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 5);

  Rng rng(31);
  std::vector<std::vector<std::size_t>> sequences(23, std::vector<std::size_t>(5));
  for (auto& seq : sequences) {
    for (auto& a : seq) a = rng.index(actions.size());
  }

  std::vector<double> scalar(sequences.size());
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    scalar[s] = rs.rollout_return(model(), obs, forecast, sequences[s]);
  }

  for (std::size_t slice : {1u, 4u, 7u, 23u}) {
    std::vector<double> batched(sequences.size(), -1.0);
    RolloutScratch scratch;
    for (std::size_t begin = 0; begin < sequences.size(); begin += slice) {
      const std::size_t end = std::min(begin + slice, sequences.size());
      rs.rollout_returns_slice(model(), obs, forecast, sequences, begin, end, batched, scratch);
    }
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      EXPECT_EQ(batched[s], scalar[s]) << "slice " << slice << " sequence " << s;
    }
  }
}

TEST_F(ParallelRolloutTest, BatchedReturnsHandleRaggedSequences) {
  // Mixed-length candidate sets: shorter candidates must stop accumulating
  // reward at their own horizon while longer ones keep going.
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{1, 8, 0.99}, actions, env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 8);

  Rng rng(37);
  std::vector<std::vector<std::size_t>> sequences;
  for (std::size_t len : {8u, 1u, 5u, 0u, 8u, 3u}) {
    std::vector<std::size_t> seq(len);
    for (auto& a : seq) a = rng.index(actions.size());
    sequences.push_back(seq);
  }

  std::vector<double> batched;
  rs.rollout_returns(model(), obs, forecast, sequences, batched);
  ASSERT_EQ(batched.size(), sequences.size());
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    EXPECT_EQ(batched[s], rs.rollout_return(model(), obs, forecast, sequences[s]))
        << "sequence " << s << " (length " << sequences[s].size() << ")";
  }
  EXPECT_EQ(batched[3], 0.0);  // empty sequence scores zero
}

TEST_F(ParallelRolloutTest, ReturnsBitIdenticalAcrossOneFourEightThreads) {
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{1, 6, 0.99}, actions, env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);

  Rng rng(41);
  std::vector<std::vector<std::size_t>> sequences(60, std::vector<std::size_t>(6));
  for (auto& seq : sequences) {
    for (auto& a : seq) a = rng.index(actions.size());
  }

  std::vector<double> scalar(sequences.size());
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    scalar[s] = rs.rollout_return(model(), obs, forecast, sequences[s]);
  }
  for (std::size_t threads : {1u, 4u, 8u}) {
    RandomShooting batched_rs(RandomShootingConfig{1, 6, 0.99}, actions, env::RewardConfig{});
    batched_rs.set_engine(engine_with_threads(threads));
    std::vector<double> batched;
    batched_rs.rollout_returns(model(), obs, forecast, sequences, batched);
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      EXPECT_EQ(batched[s], scalar[s]) << threads << " threads, sequence " << s;
    }
  }
}

TEST_F(ParallelRolloutTest, RandomShootingDecisionIdenticalAcrossThreadCounts) {
  const ActionSpace actions;
  RandomShootingConfig cfg;
  cfg.samples = 96;
  cfg.horizon = 6;
  cfg.refine_first_action = true;
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);

  RandomShooting serial(cfg, actions, env::RewardConfig{});
  for (std::size_t threads : {1u, 4u, 8u}) {
    RandomShooting parallel(cfg, actions, env::RewardConfig{});
    parallel.set_engine(engine_with_threads(threads));
    for (std::uint64_t seed : {3u, 17u, 91u}) {
      Rng rng_a(seed);
      Rng rng_b(seed);
      EXPECT_EQ(serial.optimize(model(), obs, forecast, rng_a),
                parallel.optimize(model(), obs, forecast, rng_b))
          << threads << " threads, seed " << seed;
    }
  }
}

TEST_F(ParallelRolloutTest, CemDecisionIdenticalAcrossThreadCounts) {
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 64;
  cfg.horizon = 4;
  cfg.iterations = 3;
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 4);

  Cem serial(cfg, actions, env::RewardConfig{});
  for (std::size_t threads : {1u, 4u, 8u}) {
    Cem parallel(cfg, actions, env::RewardConfig{});
    parallel.set_engine(engine_with_threads(threads));
    Rng rng_a(23);
    Rng rng_b(23);
    EXPECT_EQ(serial.optimize(model(), obs, forecast, rng_a),
              parallel.optimize(model(), obs, forecast, rng_b))
        << threads << " threads";
  }
}

TEST_F(ParallelRolloutTest, MppiDecisionIdenticalAcrossThreadCounts) {
  const ActionSpace actions;
  MppiConfig cfg;
  cfg.samples = 64;
  cfg.horizon = 4;
  cfg.iterations = 2;
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 4);

  Mppi serial(cfg, actions, env::RewardConfig{});
  for (std::size_t threads : {1u, 4u, 8u}) {
    Mppi parallel(cfg, actions, env::RewardConfig{});
    parallel.set_engine(engine_with_threads(threads));
    Rng rng_a(29);
    Rng rng_b(29);
    EXPECT_EQ(serial.optimize(model(), obs, forecast, rng_a),
              parallel.optimize(model(), obs, forecast, rng_b))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace verihvac::control
