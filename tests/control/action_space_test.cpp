#include "control/action_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace verihvac::control {
namespace {

TEST(ActionSpaceTest, DefaultGridHas87ValidPairs) {
  // heat in [15,23], cool in [21,30], heat <= cool:
  // h=15..21 -> 10 cooling options each (70); h=22 -> 9; h=23 -> 8.
  const ActionSpace space;
  EXPECT_EQ(space.size(), 87u);
}

TEST(ActionSpaceTest, AllActionsAreValid) {
  const ActionSpace space;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& a = space.action(i);
    EXPECT_GE(a.heating_c, 15.0);
    EXPECT_LE(a.heating_c, 23.0);
    EXPECT_GE(a.cooling_c, 21.0);
    EXPECT_LE(a.cooling_c, 30.0);
    EXPECT_LE(a.heating_c, a.cooling_c);
    EXPECT_DOUBLE_EQ(a.heating_c, std::round(a.heating_c));  // integer grid
    EXPECT_DOUBLE_EQ(a.cooling_c, std::round(a.cooling_c));
  }
}

TEST(ActionSpaceTest, ActionsAreUnique) {
  const ActionSpace space;
  std::set<std::pair<double, double>> seen;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& a = space.action(i);
    EXPECT_TRUE(seen.insert({a.heating_c, a.cooling_c}).second);
  }
}

TEST(ActionSpaceTest, NearestIndexIsIdentityOnGrid) {
  const ActionSpace space;
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.nearest_index(space.action(i)), i);
  }
}

TEST(ActionSpaceTest, NearestSnapsOffGridPairs) {
  const ActionSpace space;
  const std::size_t idx = space.nearest_index(sim::SetpointPair{20.4, 24.6});
  const auto& a = space.action(idx);
  EXPECT_DOUBLE_EQ(a.heating_c, 20.0);
  EXPECT_DOUBLE_EQ(a.cooling_c, 25.0);
}

TEST(ActionSpaceTest, NearestHandlesOutOfRange) {
  const ActionSpace space;
  const auto& low = space.action(space.nearest_index(sim::SetpointPair{-100.0, -100.0}));
  EXPECT_DOUBLE_EQ(low.heating_c, 15.0);
  EXPECT_DOUBLE_EQ(low.cooling_c, 21.0);
  const auto& high = space.action(space.nearest_index(sim::SetpointPair{100.0, 100.0}));
  EXPECT_DOUBLE_EQ(high.heating_c, 23.0);
  EXPECT_DOUBLE_EQ(high.cooling_c, 30.0);
}

TEST(ActionSpaceTest, ContainsChecksExactGrid) {
  const ActionSpace space;
  EXPECT_TRUE(space.contains(sim::SetpointPair{20.0, 24.0}));
  EXPECT_FALSE(space.contains(sim::SetpointPair{20.5, 24.0}));
  EXPECT_FALSE(space.contains(sim::SetpointPair{23.0, 21.0}));  // crossed
}

TEST(ActionSpaceTest, LabelIsReadable) {
  const ActionSpace space;
  const std::size_t idx = space.nearest_index(sim::SetpointPair{21.0, 25.0});
  EXPECT_EQ(space.label(idx), "h=21/c=25");
}

TEST(ActionSpaceTest, UnconstrainedGridCountsAllPairs) {
  ActionSpaceConfig cfg;
  cfg.enforce_heat_le_cool = false;
  const ActionSpace space(cfg);
  EXPECT_EQ(space.size(), 90u);  // 9 x 10
}

TEST(ActionSpaceTest, InvertedBoundsThrow) {
  ActionSpaceConfig cfg;
  cfg.heat_min = 25;
  cfg.heat_max = 20;
  EXPECT_THROW(ActionSpace{cfg}, std::invalid_argument);
}

TEST(ActionSpaceTest, CustomNarrowGrid) {
  ActionSpaceConfig cfg;
  cfg.heat_min = 20;
  cfg.heat_max = 21;
  cfg.cool_min = 24;
  cfg.cool_max = 25;
  const ActionSpace space(cfg);
  EXPECT_EQ(space.size(), 4u);
}

}  // namespace
}  // namespace verihvac::control
