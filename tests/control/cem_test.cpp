#include "control/cem.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace verihvac::control {
namespace {

/// Compact toy-plant fixture (same recipe as controllers_test).
class CemTest : public ::testing::Test {
 protected:
  static double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
    const double t = x[env::kZoneTemp];
    double dt = 0.08 * (x[env::kOutdoorTemp] - t);
    if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 1.2);
    if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
    return t + dt;
  }

  static const dyn::DynamicsModel& model() {
    static dyn::DynamicsModel* instance = [] {
      Rng rng(1);
      dyn::TransitionDataset data;
      for (int i = 0; i < 2500; ++i) {
        dyn::Transition t;
        t.input = {rng.uniform(14.0, 28.0), rng.uniform(-8.0, 12.0), 50.0, 3.0,
                   rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
        t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
        t.action.cooling_c = static_cast<double>(
            rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
        t.next_zone_temp = toy_plant(t.input, t.action);
        data.add(t);
      }
      dyn::DynamicsModelConfig cfg;
      cfg.hidden = {24, 24};
      cfg.trainer.epochs = 60;
      cfg.trainer.adam.learning_rate = 3e-3;
      auto* m = new dyn::DynamicsModel(cfg);
      m->train(data);
      return m;
    }();
    return *instance;
  }

  static env::Observation cold_occupied() {
    env::Observation obs;
    obs.zone_temp_c = 17.5;
    obs.weather.outdoor_temp_c = -5.0;
    obs.weather.humidity_pct = 50.0;
    obs.weather.wind_mps = 3.0;
    obs.occupants = 11.0;
    return obs;
  }

  static env::Observation comfy_unoccupied() {
    env::Observation obs = cold_occupied();
    obs.zone_temp_c = 21.0;
    obs.occupants = 0.0;
    return obs;
  }

  static std::vector<env::Disturbance> persistence_forecast(const env::Observation& obs,
                                                            std::size_t h) {
    env::Disturbance d;
    d.weather = obs.weather;
    d.occupants = obs.occupants;
    return std::vector<env::Disturbance>(h, d);
  }
};

TEST_F(CemTest, ConfigValidation) {
  const ActionSpace actions;
  CemConfig bad;
  bad.samples = 0;
  EXPECT_THROW(Cem(bad, actions, {}), std::invalid_argument);
  bad = CemConfig{};
  bad.iterations = 0;
  EXPECT_THROW(Cem(bad, actions, {}), std::invalid_argument);
  bad = CemConfig{};
  bad.elite_fraction = 0.0;
  EXPECT_THROW(Cem(bad, actions, {}), std::invalid_argument);
  bad = CemConfig{};
  bad.elite_fraction = 1.5;
  EXPECT_THROW(Cem(bad, actions, {}), std::invalid_argument);
  bad = CemConfig{};
  bad.initial_sigma = 0.0;
  EXPECT_THROW(Cem(bad, actions, {}), std::invalid_argument);
}

TEST_F(CemTest, ShortForecastThrows) {
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 16;
  cfg.horizon = 8;
  Cem cem(cfg, actions, {});
  Rng rng(2);
  EXPECT_THROW(cem.optimize(model(), cold_occupied(), persistence_forecast(cold_occupied(), 3), rng),
               std::invalid_argument);
}

TEST_F(CemTest, HeatsColdOccupiedZone) {
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 96;
  cfg.horizon = 6;
  cfg.iterations = 3;
  Cem cem(cfg, actions, {});
  Rng rng(11);
  const env::Observation obs = cold_occupied();
  const std::size_t idx = cem.optimize(model(), obs, persistence_forecast(obs, 6), rng);
  EXPECT_GE(actions.action(idx).heating_c, 19.0);
}

TEST_F(CemTest, ConvergesToSetbackWhenUnoccupied) {
  // Unoccupied w_e = 1: the return is the (negative) energy proxy, maximal
  // at the full setback (15, 30). Elite refinement must contract the mean
  // close to that corner.
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 256;
  cfg.horizon = 1;
  cfg.iterations = 4;
  Cem cem(cfg, actions, {});
  Rng rng(13);
  const env::Observation obs = comfy_unoccupied();
  const std::size_t idx = cem.optimize(model(), obs, persistence_forecast(obs, 1), rng);
  EXPECT_LE(actions.action(idx).heating_c, 16.5);
  EXPECT_GE(actions.action(idx).cooling_c, 28.5);
}

TEST_F(CemTest, DeterministicGivenSameRngState) {
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 64;
  cfg.horizon = 4;
  Cem cem(cfg, actions, {});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 4);
  Rng rng_a(21);
  Rng rng_b(21);
  EXPECT_EQ(cem.optimize(model(), obs, forecast, rng_a),
            cem.optimize(model(), obs, forecast, rng_b));
}

TEST_F(CemTest, ChoosesNearOptimalConstantAction) {
  // Against the exhaustively best constant-hold action, CEM's pick must be
  // within a small margin of the optimum (it optimizes sequences, so its
  // first action can legitimately differ from the best constant hold —
  // but not by much on a persistence forecast).
  const ActionSpace actions;
  CemConfig cfg;
  cfg.samples = 128;
  cfg.horizon = 5;
  cfg.iterations = 4;
  Cem cem(cfg, actions, {});
  RandomShooting scorer(RandomShootingConfig{1, 5, 0.99}, actions, env::RewardConfig{});
  Rng rng(31);
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 5);

  double best = -1e18;
  for (std::size_t a = 0; a < actions.size(); ++a) {
    best = std::max(best, scorer.rollout_return(model(), obs, forecast,
                                                std::vector<std::size_t>(5, a)));
  }
  const std::size_t idx = cem.optimize(model(), obs, forecast, rng);
  const double chosen =
      scorer.rollout_return(model(), obs, forecast, std::vector<std::size_t>(5, idx));
  // Margin: 10% of the optimality gap scale or 0.5 reward units.
  EXPECT_GE(chosen, best - std::max(0.5, 0.1 * std::abs(best)));
}

}  // namespace
}  // namespace verihvac::control
