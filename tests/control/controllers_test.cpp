#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "control/clue_agent.hpp"
#include "control/evaluate.hpp"
#include "control/mbrl_agent.hpp"
#include "control/mppi.hpp"
#include "control/random_shooting.hpp"
#include "control/rule_based.hpp"

namespace verihvac::control {
namespace {

/// Shared fixture: a toy-plant-trained dynamics model (fast, accurate).
class ControllersTest : public ::testing::Test {
 protected:
  static double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
    const double t = x[env::kZoneTemp];
    double dt = 0.08 * (x[env::kOutdoorTemp] - t);
    if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 1.2);
    if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
    return t + dt;
  }

  static dyn::TransitionDataset toy_data(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    dyn::TransitionDataset data;
    for (std::size_t i = 0; i < n; ++i) {
      dyn::Transition t;
      t.input = {rng.uniform(14.0, 28.0), rng.uniform(-8.0, 12.0), 50.0,
                 3.0,                      rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
      t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
      t.action.cooling_c = static_cast<double>(
          rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
      t.next_zone_temp = toy_plant(t.input, t.action);
      data.add(t);
    }
    return data;
  }

  static const dyn::DynamicsModel& model() {
    static dyn::DynamicsModel* instance = [] {
      dyn::DynamicsModelConfig cfg;
      cfg.hidden = {24, 24};
      cfg.trainer.epochs = 60;
      cfg.trainer.adam.learning_rate = 3e-3;
      auto* m = new dyn::DynamicsModel(cfg);
      m->train(toy_data(2500, 1));
      return m;
    }();
    return *instance;
  }

  static env::Observation cold_occupied() {
    env::Observation obs;
    obs.zone_temp_c = 17.5;  // below winter comfort
    obs.weather.outdoor_temp_c = -5.0;
    obs.weather.humidity_pct = 50.0;
    obs.weather.wind_mps = 3.0;
    obs.weather.solar_wm2 = 0.0;
    obs.occupants = 11.0;
    return obs;
  }

  static env::Observation comfy_unoccupied() {
    env::Observation obs = cold_occupied();
    obs.zone_temp_c = 21.0;
    obs.occupants = 0.0;
    return obs;
  }

  static std::vector<env::Disturbance> persistence_forecast(const env::Observation& obs,
                                                            std::size_t h) {
    env::Disturbance d;
    d.weather = obs.weather;
    d.occupants = obs.occupants;
    return std::vector<env::Disturbance>(h, d);
  }
};

TEST_F(ControllersTest, RuleBasedFollowsOccupancy) {
  RuleBasedController ctrl(sim::SetpointPair{20.0, 23.5}, sim::SetpointPair{15.0, 30.0});
  const auto occupied = ctrl.act(cold_occupied(), {});
  EXPECT_DOUBLE_EQ(occupied.heating_c, 20.0);
  const auto empty = ctrl.act(comfy_unoccupied(), {});
  EXPECT_DOUBLE_EQ(empty.heating_c, 15.0);
  EXPECT_EQ(ctrl.forecast_horizon(), 0u);
  EXPECT_EQ(ctrl.name(), "default");
}

TEST_F(ControllersTest, RandomShootingHeatsColdOccupiedZone) {
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{512, 8, 0.99}, actions, env::RewardConfig{});
  Rng rng(3);
  const env::Observation obs = cold_occupied();
  const std::size_t idx =
      rs.optimize(model(), obs, persistence_forecast(obs, 8), rng);
  // Occupied + 17.5 degC: the optimizer must drive the zone up (criterion
  // #3 direction). The toy plant caps heating delivery at min(sp-t, 1.2),
  // so every setpoint >= ~19 heats identically and the energy proxy
  // correctly breaks the tie downward; the semantic requirement is only
  // that the chosen setpoint heats at (near-)full capacity.
  EXPECT_GT(actions.action(idx).heating_c, obs.zone_temp_c);
  EXPECT_GE(actions.action(idx).heating_c, 18.0);
}

TEST_F(ControllersTest, RandomShootingSetsBackWhenUnoccupied) {
  // With horizon 1 the best sampled sequence is simply the lowest-energy
  // action; 800 samples over 87 actions hit the exact optimum (15, 30) with
  // overwhelming probability. Unoccupied: w_e = 1 -> energy proxy dominates.
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{800, 1, 0.99}, actions, env::RewardConfig{});
  Rng rng(4);
  const env::Observation obs = comfy_unoccupied();
  const std::size_t idx =
      rs.optimize(model(), obs, persistence_forecast(obs, 1), rng);
  EXPECT_DOUBLE_EQ(actions.action(idx).heating_c, 15.0);
  EXPECT_DOUBLE_EQ(actions.action(idx).cooling_c, 30.0);
}

TEST_F(ControllersTest, RolloutReturnPrefersComfortWhenOccupied) {
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{1, 6, 0.99}, actions, env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);
  const std::size_t heat_idx = actions.nearest_index(sim::SetpointPair{22.0, 25.0});
  const std::size_t setback_idx = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  const std::vector<std::size_t> heat_seq(6, heat_idx);
  const std::vector<std::size_t> setback_seq(6, setback_idx);
  EXPECT_GT(rs.rollout_return(model(), obs, forecast, heat_seq),
            rs.rollout_return(model(), obs, forecast, setback_seq));
}

TEST_F(ControllersTest, RandomShootingShortForecastThrows) {
  const ActionSpace actions;
  RandomShooting rs(RandomShootingConfig{16, 8, 0.99}, actions, env::RewardConfig{});
  Rng rng(5);
  EXPECT_THROW(
      rs.optimize(model(), cold_occupied(), persistence_forecast(cold_occupied(), 3), rng),
      std::invalid_argument);
}

TEST_F(ControllersTest, RandomShootingConfigValidation) {
  const ActionSpace actions;
  EXPECT_THROW(RandomShooting(RandomShootingConfig{0, 8, 0.99}, actions, {}),
               std::invalid_argument);
  EXPECT_THROW(RandomShooting(RandomShootingConfig{8, 0, 0.99}, actions, {}),
               std::invalid_argument);
}

TEST_F(ControllersTest, MbrlAgentIsStochasticAcrossCalls) {
  MbrlAgent agent(model(), RandomShootingConfig{32, 6, 0.99}, ActionSpace{},
                  env::RewardConfig{}, 7);
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);
  // The motivation experiment (Fig. 1): repeated decisions on the same
  // input spread over multiple actions.
  const auto counts = agent.action_distribution(obs, forecast, 30);
  std::size_t distinct = 0;
  std::size_t total = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++distinct;
    total += c;
  }
  EXPECT_EQ(total, 30u);
  EXPECT_GT(distinct, 1u);
}

TEST_F(ControllersTest, MbrlAgentResetRestoresSeed) {
  MbrlAgent agent(model(), RandomShootingConfig{32, 6, 0.99}, ActionSpace{},
                  env::RewardConfig{}, 7);
  const env::Observation obs = cold_occupied();
  const auto forecast = persistence_forecast(obs, 6);
  const std::size_t first = agent.decide_once(obs, forecast);
  agent.reset();
  EXPECT_EQ(agent.decide_once(obs, forecast), first);
}

TEST_F(ControllersTest, MppiHeatsColdOccupiedZone) {
  const ActionSpace actions;
  Mppi mppi(MppiConfig{64, 6, 2, 0.99, 1.0, 2.0}, actions, env::RewardConfig{});
  Rng rng(11);
  const env::Observation obs = cold_occupied();
  const std::size_t idx = mppi.optimize(model(), obs, persistence_forecast(obs, 6), rng);
  EXPECT_GE(actions.action(idx).heating_c, 19.0);
}

TEST_F(ControllersTest, MppiConfigValidation) {
  const ActionSpace actions;
  MppiConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(Mppi(bad, actions, {}), std::invalid_argument);
}

TEST_F(ControllersTest, ClueFallsBackUnderUncertainty) {
  dyn::EnsembleConfig ens_cfg;
  ens_cfg.members = 3;
  ens_cfg.member_config.hidden = {16, 16};
  ens_cfg.member_config.trainer.epochs = 30;
  dyn::EnsembleDynamics ensemble(ens_cfg);
  ensemble.train(toy_data(600, 21));

  ClueConfig clue_cfg;
  clue_cfg.rs = RandomShootingConfig{32, 6, 0.99};
  clue_cfg.uncertainty_threshold_c = 1e-9;  // force fallback on any query
  ClueAgent agent(ensemble, clue_cfg, ActionSpace{}, env::RewardConfig{},
                  sim::SetpointPair{20.0, 23.5}, sim::SetpointPair{15.0, 30.0}, 31);
  const env::Observation obs = cold_occupied();
  const auto action = agent.act(obs, persistence_forecast(obs, 6));
  EXPECT_DOUBLE_EQ(action.heating_c, 20.0);  // occupied fallback
  EXPECT_DOUBLE_EQ(agent.fallback_rate(), 1.0);
}

TEST_F(ControllersTest, ClueTrustsModelWhenCertain) {
  dyn::EnsembleConfig ens_cfg;
  ens_cfg.members = 3;
  ens_cfg.member_config.hidden = {16, 16};
  ens_cfg.member_config.trainer.epochs = 40;
  dyn::EnsembleDynamics ensemble(ens_cfg);
  ensemble.train(toy_data(1500, 22));

  ClueConfig clue_cfg;
  clue_cfg.rs = RandomShootingConfig{64, 6, 0.99};
  clue_cfg.uncertainty_threshold_c = 10.0;  // never fall back
  ClueAgent agent(ensemble, clue_cfg, ActionSpace{}, env::RewardConfig{},
                  sim::SetpointPair{20.0, 23.5}, sim::SetpointPair{15.0, 30.0}, 32);
  const env::Observation obs = comfy_unoccupied();
  const auto action = agent.act(obs, persistence_forecast(obs, 6));
  // Unoccupied and trusting the model: a low-energy plan (heating setpoint
  // well below the occupied fallback's 20), and no fallback recorded.
  EXPECT_LT(action.heating_c, 20.0);
  EXPECT_DOUBLE_EQ(agent.fallback_rate(), 0.0);
}

TEST_F(ControllersTest, RunEpisodeProducesFullTrace) {
  env::EnvConfig cfg;
  cfg.days = 1;
  env::BuildingEnv environment(cfg);
  RuleBasedController ctrl(sim::SetpointPair{20.0, 23.5}, sim::SetpointPair{15.0, 30.0});
  EpisodeTrace trace;
  const env::EpisodeMetrics metrics = run_episode(environment, ctrl, &trace);
  EXPECT_EQ(metrics.steps(), environment.horizon_steps());
  EXPECT_EQ(trace.zone_temps.size(), metrics.steps());
  EXPECT_EQ(trace.actions.size(), metrics.steps());
  EXPECT_GT(metrics.total_energy_kwh(), 0.0);
}

}  // namespace
}  // namespace verihvac::control
