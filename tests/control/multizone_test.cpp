#include "control/multizone.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "control/rule_based.hpp"

namespace verihvac::control {
namespace {

/// A controller that always returns a fixed pair and counts calls.
class FixedController final : public Controller {
 public:
  explicit FixedController(sim::SetpointPair pair, std::size_t horizon = 0)
      : pair_(pair), horizon_(horizon) {}
  sim::SetpointPair act(const env::Observation&,
                        const std::vector<env::Disturbance>&) override {
    ++calls;
    return pair_;
  }
  std::size_t forecast_horizon() const override { return horizon_; }
  std::string name() const override { return "fixed"; }
  void reset() override { ++resets; }

  int calls = 0;
  int resets = 0;

 private:
  sim::SetpointPair pair_;
  std::size_t horizon_;
};

TEST(MultiZoneCoordinatorTest, RejectsEmptyAndNullControllers) {
  EXPECT_THROW(MultiZoneCoordinator({}), std::invalid_argument);
  std::vector<std::shared_ptr<Controller>> with_null;
  with_null.push_back(std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0}));
  with_null.push_back(nullptr);
  EXPECT_THROW(MultiZoneCoordinator(std::move(with_null)), std::invalid_argument);
}

TEST(MultiZoneCoordinatorTest, DispatchesEachZoneToItsController) {
  auto a = std::make_shared<FixedController>(sim::SetpointPair{15.0, 30.0});
  auto b = std::make_shared<FixedController>(sim::SetpointPair{22.0, 24.0});
  MultiZoneCoordinator coord({a, b});
  const std::vector<env::Observation> obs(2);
  const auto actions = coord.act(obs, {});
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_DOUBLE_EQ(actions[0].heating_c, 15.0);
  EXPECT_DOUBLE_EQ(actions[1].heating_c, 22.0);
  EXPECT_EQ(a->calls, 1);
  EXPECT_EQ(b->calls, 1);
}

TEST(MultiZoneCoordinatorTest, ValidatesObservationCount) {
  MultiZoneCoordinator coord(
      {std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0})});
  const std::vector<env::Observation> two(2);
  EXPECT_THROW(coord.act(two, {}), std::invalid_argument);
}

TEST(MultiZoneCoordinatorTest, ForecastHorizonIsTheMaxOverZones) {
  MultiZoneCoordinator coord(
      {std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0}, 4),
       std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0}, 9),
       std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0}, 1)});
  EXPECT_EQ(coord.forecast_horizon(), 9u);
}

TEST(MultiZoneCoordinatorTest, ResetPropagatesToEveryZone) {
  auto a = std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0});
  auto b = std::make_shared<FixedController>(sim::SetpointPair{20.0, 24.0});
  MultiZoneCoordinator coord({a, b});
  coord.reset();
  EXPECT_EQ(a->resets, 1);
  EXPECT_EQ(b->resets, 1);
}

TEST(MultiZoneCoordinatorTest, MixesHeterogeneousControllerTypes) {
  MultiZoneCoordinator coord(
      {std::make_shared<RuleBasedController>(sim::SetpointPair{20.0, 23.5},
                                             sim::SetpointPair{15.0, 30.0}),
       std::make_shared<FixedController>(sim::SetpointPair{21.0, 25.0})});
  std::vector<env::Observation> obs(2);
  obs[0].occupants = 11.0;  // rule-based picks the occupied schedule
  const auto actions = coord.act(obs, {});
  EXPECT_DOUBLE_EQ(actions[0].heating_c, 20.0);
  EXPECT_DOUBLE_EQ(actions[1].heating_c, 21.0);
}

}  // namespace
}  // namespace verihvac::control
