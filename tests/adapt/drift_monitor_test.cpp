#include "adapt/drift_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace verihvac::adapt {
namespace {

DriftMonitorConfig quick_config() {
  DriftMonitorConfig config;
  config.ph_delta = 0.01;
  config.ph_lambda = 1.0;
  config.min_samples = 16;
  return config;
}

TEST(DriftMonitorTest, WelfordMatchesRunningStats) {
  DriftMonitor monitor(quick_config());
  RunningStats reference;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double residual = std::abs(rng.normal(0.1, 0.02));
    monitor.observe("cluster", residual);
    reference.add(residual);
  }
  const DriftStats stats = monitor.stats("cluster");
  EXPECT_EQ(stats.samples, reference.count());
  EXPECT_DOUBLE_EQ(stats.mean, reference.mean());
  EXPECT_DOUBLE_EQ(stats.stddev, reference.stddev());
  EXPECT_DOUBLE_EQ(stats.max_residual, reference.max());
}

TEST(DriftMonitorTest, StationaryResidualsNeverAlarm) {
  DriftMonitor monitor(quick_config());
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    // Stable model: small residuals with no trend.
    const auto event = monitor.observe("quiet", std::abs(rng.normal(0.08, 0.02)));
    EXPECT_FALSE(event.has_value()) << "false alarm at sample " << i;
  }
  EXPECT_FALSE(monitor.drifted("quiet"));
}

TEST(DriftMonitorTest, MeanShiftFiresOnceAndLatches) {
  DriftMonitor monitor(quick_config());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FALSE(monitor.observe("b", std::abs(rng.normal(0.08, 0.02))).has_value());
  }
  // The building drifts: residuals triple. Page-Hinkley must fire exactly
  // once, then stay latched until reset.
  std::size_t fired = 0;
  std::size_t fired_at = 0;
  for (int i = 0; i < 200; ++i) {
    if (const auto event = monitor.observe("b", std::abs(rng.normal(0.30, 0.04)))) {
      ++fired;
      fired_at = i;
      EXPECT_EQ(event->cluster, "b");
      EXPECT_GT(event->ph_statistic, monitor.config().ph_lambda);
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_LT(fired_at, 50u) << "detection delay too long for a 4x lambda shift";
  EXPECT_TRUE(monitor.drifted("b"));
}

TEST(DriftMonitorTest, MinSamplesSuppressesEarlyAlarm) {
  DriftMonitorConfig config = quick_config();
  config.min_samples = 64;
  DriftMonitor monitor(config);
  // A violent shift right after startup: without the warmup the PH
  // statistic would alarm within a couple of samples; min_samples defers
  // the (latched) alarm until the running mean had a chance to settle.
  std::size_t first_fire = 0;
  bool fired = false;
  for (std::size_t i = 0; i < 200 && !fired; ++i) {
    const double residual = i < 8 ? 0.05 : 1.0;
    if (monitor.observe("c", residual).has_value()) {
      first_fire = i;
      fired = true;
    }
  }
  ASSERT_TRUE(fired);
  EXPECT_GE(first_fire + 1, config.min_samples);
}

TEST(DriftMonitorTest, ResetRebaselinesCluster) {
  DriftMonitor monitor(quick_config());
  Rng rng(9);
  for (int i = 0; i < 100; ++i) monitor.observe("d", std::abs(rng.normal(0.08, 0.02)));
  for (int i = 0; i < 100; ++i) monitor.observe("d", std::abs(rng.normal(0.5, 0.05)));
  ASSERT_TRUE(monitor.drifted("d"));

  monitor.reset("d");
  EXPECT_FALSE(monitor.drifted("d"));
  EXPECT_EQ(monitor.stats("d").samples, 0u);

  // Post-adaptation residuals are small again: no immediate re-alarm.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(monitor.observe("d", std::abs(rng.normal(0.08, 0.02))).has_value());
  }
}

TEST(DriftMonitorTest, ClustersAreIndependent) {
  DriftMonitor monitor(quick_config());
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    monitor.observe("stable", std::abs(rng.normal(0.08, 0.02)));
    monitor.observe("drifting", 0.08 + 0.004 * i);  // creeping degradation
  }
  EXPECT_FALSE(monitor.drifted("stable"));
  EXPECT_TRUE(monitor.drifted("drifting"));
  EXPECT_EQ(monitor.clusters().size(), 2u);
}

TEST(DriftMonitorTest, UnknownClusterHasZeroStats) {
  DriftMonitor monitor;
  const DriftStats stats = monitor.stats("nobody");
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_FALSE(stats.drifted);
  EXPECT_FALSE(monitor.drifted("nobody"));
}

}  // namespace
}  // namespace verihvac::adapt
