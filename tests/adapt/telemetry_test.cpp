#include "adapt/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "envlib/feature_schema.hpp"
#include "serve/request_scheduler.hpp"
#include "serve/serve_test_utils.hpp"

namespace verihvac::adapt {
namespace {

using serve::testing::cold_occupied;
using serve::testing::pool_with_threads;
using serve::testing::steady_forecast;
using serve::testing::toy_model;
using serve::testing::toy_policy;

/// Emits one synthetic decision event straight into the tap (the ring
/// mechanics tests bypass the scheduler).
void emit(TelemetryLog& log, serve::SessionId session, std::uint64_t index,
          serve::RequestKind kind, std::size_t action, double zone_temp,
          std::size_t forecast_len = 0, std::uint64_t version = 1) {
  const env::Observation obs = cold_occupied(zone_temp);
  const std::vector<env::Disturbance> forecast = steady_forecast(obs, forecast_len);
  const std::string key = "toy";
  serve::DecisionEvent event;
  event.session = session;
  event.decision_index = index;
  event.session_seed = 1000 + session;
  event.kind = kind;
  event.policy_key = &key;
  event.policy_version = version;
  event.action_index = action;
  event.action = {18.0, 26.0};
  event.observation = &obs;
  event.forecast = forecast.empty() ? nullptr : &forecast;
  event.latency_seconds = 1e-6;
  log.on_decision(event);
}

TelemetryConfig tiny_ring() {
  TelemetryConfig config;
  config.shards = 1;
  config.capacity_per_shard = 4;
  return config;
}

TEST(TelemetryLogTest, RecordsRoundTripThroughTheRing) {
  TelemetryLog log;
  emit(log, 7, 0, serve::RequestKind::kDtPolicy, 3, 17.5);
  emit(log, 7, 1, serve::RequestKind::kMbrlFallback, 5, 18.5, /*forecast_len=*/4);

  std::vector<TelemetryRecord> records;
  EXPECT_EQ(log.drain(records), 0u);
  ASSERT_EQ(records.size(), 2u);

  EXPECT_EQ(records[0].session, 7u);
  EXPECT_EQ(records[0].decision_index, 0u);
  EXPECT_EQ(records[0].request_kind(), serve::RequestKind::kDtPolicy);
  EXPECT_EQ(records[0].action_index, 3u);
  EXPECT_DOUBLE_EQ(records[0].obs[env::kZoneTemp], 17.5);
  EXPECT_EQ(records[0].forecast_len, 0u);

  EXPECT_EQ(records[1].request_kind(), serve::RequestKind::kMbrlFallback);
  EXPECT_EQ(records[1].forecast_len, 4u);
  EXPECT_EQ(records[1].forecast_truncated, 0u);
  const auto forecast = records[1].forecast_vector();
  ASSERT_EQ(forecast.size(), 4u);
  EXPECT_DOUBLE_EQ(forecast[0].weather.outdoor_temp_c, -5.0);
  EXPECT_DOUBLE_EQ(forecast[0].occupants, 11.0);

  // Drained means drained: nothing left.
  std::vector<TelemetryRecord> again;
  EXPECT_EQ(log.drain(again), 0u);
  EXPECT_TRUE(again.empty());
}

TEST(TelemetryLogTest, LappedRingCountsLossesAndKeepsNewest) {
  TelemetryLog log(tiny_ring());
  ASSERT_EQ(log.capacity_per_shard(), 4u);
  for (std::uint64_t d = 0; d < 10; ++d) {
    emit(log, 1, d, serve::RequestKind::kDtPolicy, 0, 15.0 + static_cast<double>(d));
  }
  std::vector<TelemetryRecord> records;
  const std::uint64_t lost = log.drain(records);
  EXPECT_EQ(lost, 6u);
  ASSERT_EQ(records.size(), 4u);
  // The survivors are the newest lap, in ticket order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].decision_index, 6 + i);
  }
  EXPECT_EQ(log.stats().recorded, 10u);
  EXPECT_EQ(log.stats().lost, 6u);
  // Every loss here is an overwrite-on-lap (nothing was dropped at
  // publish time), so the overwrite counter matches the drain's tally.
  EXPECT_EQ(log.stats().overwritten, 6u);
}

TEST(TelemetryLogTest, DtSamplingSkipsDeterministicallyAndCounts) {
  TelemetryConfig config;
  config.dt_sample_period = 4;  // record decision_index % 4 in {0, 1}
  TelemetryLog log(config);
  for (std::uint64_t d = 0; d < 8; ++d) {
    emit(log, 1, d, serve::RequestKind::kDtPolicy, 0, 18.0);
  }
  // MBRL is never sampled away, even at a skipped index.
  emit(log, 1, 8, serve::RequestKind::kMbrlFallback, 2, 18.0, /*forecast_len=*/3);

  std::vector<TelemetryRecord> records;
  EXPECT_EQ(log.drain(records), 0u);
  ASSERT_EQ(records.size(), 5u);
  const std::uint64_t kept[] = {0, 1, 4, 5, 8};
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].decision_index, kept[i]);
  }
  EXPECT_EQ(log.stats().sampling_skips, 4u);
  EXPECT_EQ(log.stats().lost, 0u);
}

TEST(TelemetryLogTest, ForecastBeyondCapIsTruncatedAndFlagged) {
  TelemetryLog log;
  emit(log, 2, 0, serve::RequestKind::kMbrlFallback, 1, 18.0,
       /*forecast_len=*/kTelemetryMaxForecast + 5);
  std::vector<TelemetryRecord> records;
  log.drain(records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].forecast_len, kTelemetryMaxForecast);
  EXPECT_EQ(records[0].forecast_truncated, 1u);
}

TEST(TelemetryLogTest, ConcurrentProducersLoseNothingWhenSized) {
  TelemetryConfig config;
  config.shards = 4;
  config.capacity_per_shard = 2048;
  TelemetryLog log(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        emit(log, static_cast<serve::SessionId>(t + 1), static_cast<std::uint64_t>(i),
             serve::RequestKind::kDtPolicy, 0, 18.0);
      }
    });
  }
  for (auto& producer : producers) producer.join();

  std::vector<TelemetryRecord> records;
  EXPECT_EQ(log.drain(records), 0u);
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.stats().lost, 0u);
}

TEST(TelemetryTraceTest, DatasetPairsConsecutiveDecisionsPerSession) {
  TelemetryLog log;
  // Session 1: decisions 0,1,2 -> two transitions. Session 2: decisions
  // 0 and 2 (gap: record 1 was lost) -> no transition.
  emit(log, 1, 0, serve::RequestKind::kDtPolicy, 0, 17.0);
  emit(log, 2, 0, serve::RequestKind::kDtPolicy, 0, 20.0);
  emit(log, 1, 1, serve::RequestKind::kDtPolicy, 0, 17.5);
  emit(log, 2, 2, serve::RequestKind::kDtPolicy, 0, 21.0);
  emit(log, 1, 2, serve::RequestKind::kDtPolicy, 0, 18.0);

  TelemetryTrace trace;
  log.drain(trace.records);
  const dyn::TransitionDataset dataset = trace_to_dataset(trace);
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_DOUBLE_EQ(dataset.at(0).input[env::kZoneTemp], 17.0);
  EXPECT_DOUBLE_EQ(dataset.at(0).next_zone_temp, 17.5);
  EXPECT_DOUBLE_EQ(dataset.at(0).action.heating_c, 18.0);
  EXPECT_DOUBLE_EQ(dataset.at(1).input[env::kZoneTemp], 17.5);
  EXPECT_DOUBLE_EQ(dataset.at(1).next_zone_temp, 18.0);
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetryTraceTest, SaveLoadSaveIsByteIdentical) {
  TelemetryLog log;
  log.register_session(1, 1001, "Pittsburgh/baseline");
  log.register_session(2, 1002, "Tucson/oversized");
  emit(log, 1, 0, serve::RequestKind::kDtPolicy, 3, 17.5);
  emit(log, 1, 1, serve::RequestKind::kMbrlFallback, 5, 18.5, /*forecast_len=*/5);
  emit(log, 2, 0, serve::RequestKind::kDtPolicy, 1, 22.0);

  TelemetryTrace trace;
  trace.sessions = log.sessions();
  log.drain(trace.records);

  const std::string path_a = temp_path("verihvac_trace_a.bin");
  const std::string path_b = temp_path("verihvac_trace_b.bin");
  save_trace(trace, path_a);
  const TelemetryTrace loaded = load_trace(path_a);
  save_trace(loaded, path_b);

  EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));
  ASSERT_EQ(loaded.sessions.size(), 2u);
  EXPECT_EQ(loaded.sessions[0].policy_key, "Pittsburgh/baseline");
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.records[1].forecast_len, 5u);
  EXPECT_DOUBLE_EQ(loaded.records[1].obs[env::kZoneTemp], 18.5);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TelemetryLogTest, SchemaTaggedEventsCarryTheSchemaShape) {
  TelemetryLog log;
  env::Observation obs = cold_occupied(17.5);
  obs.hour_sin = 0.25;
  obs.hour_cos = -0.5;
  obs.occupants_ahead = 9.0;
  const std::string key = "toy";
  serve::DecisionEvent event;
  event.session = 3;
  event.decision_index = 0;
  event.session_seed = 1003;
  event.kind = serve::RequestKind::kDtPolicy;
  event.policy_key = &key;
  event.policy_version = 1;
  event.action_index = 2;
  event.action = {18.0, 26.0};
  event.observation = &obs;
  event.schema = &env::time_aware_schema();
  event.latency_seconds = 1e-6;
  log.on_decision(event);
  // A schema-less event (the legacy tap path) stays the implicit baseline.
  emit(log, 3, 1, serve::RequestKind::kDtPolicy, 0, 18.0);

  std::vector<TelemetryRecord> records;
  EXPECT_EQ(log.drain(records), 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].obs_len, 9u);
  EXPECT_EQ(records[0].zone_temp_dim, 0u);
  EXPECT_DOUBLE_EQ(records[0].obs[0], 17.5);
  EXPECT_DOUBLE_EQ(records[0].obs[6], 0.25);
  EXPECT_DOUBLE_EQ(records[0].obs[7], -0.5);
  EXPECT_DOUBLE_EQ(records[0].obs[8], 9.0);
  EXPECT_EQ(records[0].obs_vector().size(), 9u);
  EXPECT_EQ(records[1].obs_len, 6u);
  EXPECT_EQ(records[1].zone_temp_dim, 0u);
}

TEST(TelemetryTraceTest, LoadRejectsBadMagicAndVersion) {
  const std::string path = temp_path("verihvac_trace_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::binary);
    out.write("VHTL", 4);
    const std::uint32_t version = 999;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  EXPECT_THROW(load_trace(temp_path("verihvac_trace_missing.bin")), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, TimeAwareRecordsSurviveSaveLoad) {
  TelemetryTrace trace;
  TelemetryRecord r;
  r.session = 1;
  r.decision_index = 0;
  r.kind = 0;
  r.action_index = 4;
  r.obs_len = 9;
  r.zone_temp_dim = 0;
  for (std::size_t d = 0; d < 9; ++d) r.obs[d] = 10.0 + static_cast<double>(d);
  r.heating_c = 18.0;
  r.cooling_c = 26.0;
  r.forecast_len = 2;
  for (std::size_t k = 0; k < 2; ++k) {
    r.forecast[k].outdoor_temp_c = -5.0;
    r.forecast[k].occupants = 11.0;
    r.forecast[k].hour_sin = 0.25;
    r.forecast[k].hour_cos = -0.5;
    r.forecast[k].occupants_ahead = 9.0;
  }
  trace.records.push_back(r);

  const std::string path_a = temp_path("verihvac_trace_aware_a.bin");
  const std::string path_b = temp_path("verihvac_trace_aware_b.bin");
  save_trace(trace, path_a);
  const TelemetryTrace loaded = load_trace(path_a);
  save_trace(loaded, path_b);
  EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));

  ASSERT_EQ(loaded.records.size(), 1u);
  const TelemetryRecord& back = loaded.records[0];
  EXPECT_EQ(back.obs_len, 9u);
  EXPECT_EQ(back.zone_temp_dim, 0u);
  for (std::size_t d = 0; d < 9; ++d) EXPECT_DOUBLE_EQ(back.obs[d], 10.0 + static_cast<double>(d));
  ASSERT_EQ(back.forecast_len, 2u);
  EXPECT_DOUBLE_EQ(back.forecast[1].hour_sin, 0.25);
  EXPECT_DOUBLE_EQ(back.forecast[1].hour_cos, -0.5);
  EXPECT_DOUBLE_EQ(back.forecast[1].occupants_ahead, 9.0);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

TEST(TelemetryTraceTest, V1TraceLoadsAsImplicitBaseline) {
  // A hand-written version-1 blob: no obs_len/zone_temp_dim fields, six
  // observation doubles, and five-double forecast entries. The loader
  // must surface it as the baseline layout with temporal defaults.
  const std::string path = temp_path("verihvac_trace_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("VHTL", 4);
    put<std::uint32_t>(out, 1);  // version
    put<std::uint64_t>(out, 1);  // sessions
    put<std::uint64_t>(out, 7);  // id
    put<std::uint64_t>(out, 1007);  // seed
    const std::string key = "Pittsburgh/baseline";
    put<std::uint64_t>(out, key.size());
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    put<std::uint64_t>(out, 1);  // records
    put<std::uint64_t>(out, 7);  // session
    put<std::uint64_t>(out, 0);  // decision_index
    put<std::uint64_t>(out, 1007);  // session_seed
    put<std::uint64_t>(out, 1);  // policy_version
    put<std::uint8_t>(out, 0);   // kind
    put<std::uint8_t>(out, 0);   // forecast_truncated
    put<std::uint16_t>(out, 1);  // forecast_len
    put<std::uint32_t>(out, 3);  // action_index
    put<double>(out, 1e-6);      // latency
    for (double v : {17.5, -5.0, 50.0, 3.0, 120.0, 11.0}) put<double>(out, v);
    put<double>(out, 18.0);  // heating
    put<double>(out, 26.0);  // cooling
    for (double v : {-5.0, 50.0, 3.0, 120.0, 11.0}) put<double>(out, v);  // forecast[0]
  }

  const TelemetryTrace trace = load_trace(path);
  ASSERT_EQ(trace.records.size(), 1u);
  const TelemetryRecord& r = trace.records[0];
  EXPECT_EQ(r.obs_len, 6u);
  EXPECT_EQ(r.zone_temp_dim, 0u);
  EXPECT_DOUBLE_EQ(r.obs[0], 17.5);
  EXPECT_DOUBLE_EQ(r.obs[5], 11.0);
  ASSERT_EQ(r.forecast_len, 1u);
  EXPECT_DOUBLE_EQ(r.forecast[0].occupants, 11.0);
  // Temporal fields the v1 layout never carried take their defaults.
  EXPECT_DOUBLE_EQ(r.forecast[0].hour_sin, 0.0);
  EXPECT_DOUBLE_EQ(r.forecast[0].hour_cos, 1.0);
  EXPECT_DOUBLE_EQ(r.forecast[0].occupants_ahead, 0.0);
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, DatasetPairsWithinOneSchemaShape) {
  // A fleet trace can mix widths (heterogeneous registry keys); the
  // dataset extractor pairs within the first-seen shape and leaves
  // foreign-shaped records alone.
  TelemetryTrace trace;
  auto record = [](std::uint64_t session, std::uint64_t index, std::uint16_t width,
                   double zone_temp) {
    TelemetryRecord r;
    r.session = session;
    r.decision_index = index;
    r.obs_len = width;
    r.zone_temp_dim = 0;
    r.obs[0] = zone_temp;
    r.heating_c = 18.0;
    r.cooling_c = 26.0;
    return r;
  };
  trace.records.push_back(record(1, 0, 6, 17.0));
  trace.records.push_back(record(1, 1, 6, 17.5));
  trace.records.push_back(record(2, 0, 9, 20.0));
  trace.records.push_back(record(2, 1, 9, 20.5));

  const dyn::TransitionDataset dataset = trace_to_dataset(trace);
  ASSERT_EQ(dataset.size(), 1u);
  EXPECT_EQ(dataset.at(0).input.size(), 6u);
  EXPECT_DOUBLE_EQ(dataset.at(0).input[0], 17.0);
  EXPECT_DOUBLE_EQ(dataset.at(0).next_zone_temp, 17.5);
}

// ---------------------------------------------------------------------------
// End-to-end: capture a live serving run through the scheduler tap, then
// replay the trace — decisions must be bit-identical at 1/4/8 threads.

control::RandomShootingConfig serving_rs() {
  control::RandomShootingConfig config;
  config.samples = 24;
  config.horizon = 4;
  return config;
}

TEST(TelemetryReplayTest, LiveCaptureReplaysBitIdenticallyAcrossThreadCounts) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs = serving_rs();

  auto log = std::make_shared<TelemetryLog>();
  auto registry = std::make_shared<serve::PolicyRegistry>();
  auto sessions = std::make_shared<serve::SessionManager>();
  const std::uint64_t policy_version = registry->install("toy", policy);
  serve::RequestScheduler scheduler({}, registry, sessions, rs, control::ActionSpace{},
                                    env::RewardConfig{}, pool_with_threads(2));
  const std::uint64_t model_generation = scheduler.install_model("toy", model);
  scheduler.set_tap(log);

  std::vector<serve::SessionId> ids;
  for (std::size_t s = 0; s < 3; ++s) {
    serve::SessionConfig session;
    session.policy_key = "toy";
    session.seed = 5000 + 13 * s;
    ids.push_back(sessions->open(session));
    log->register_session(ids.back(), session.seed, session.policy_key);
  }

  // Mixed traffic: DT inline + MBRL micro-batches, several decisions per
  // session.
  std::vector<std::size_t> served_actions;
  for (std::size_t round = 0; round < 3; ++round) {
    std::vector<serve::ControlRequest> batch;
    for (std::size_t s = 0; s < ids.size(); ++s) {
      serve::ControlRequest request;
      request.session = ids[s];
      request.kind =
          s == 0 ? serve::RequestKind::kDtPolicy : serve::RequestKind::kMbrlFallback;
      request.observation = cold_occupied(15.0 + static_cast<double>(round + s));
      if (request.kind == serve::RequestKind::kMbrlFallback) {
        request.forecast = steady_forecast(request.observation, rs.horizon);
      }
      batch.push_back(std::move(request));
    }
    for (const auto& decision : scheduler.serve_batch(batch)) {
      served_actions.push_back(decision.action_index);
    }
  }

  TelemetryTrace trace;
  trace.sessions = log->sessions();
  EXPECT_EQ(log->drain(trace.records), 0u);
  ASSERT_EQ(trace.records.size(), served_actions.size());

  ReplayAssets assets;
  assets.policies[policy_version] = policy;
  assets.models[model_generation] = model;

  for (const std::size_t threads : {1u, 4u, 8u}) {
    ReplayConfig config;
    config.rs = rs;
    config.engine = std::make_shared<const control::RolloutEngine>(
        control::RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
    const ReplayReport report = replay_trace(trace, assets, config);
    EXPECT_EQ(report.replayed, trace.records.size());
    EXPECT_TRUE(report.bit_identical())
        << "replay diverged at " << threads << " threads: " << report.mismatches.size()
        << " mismatches";
  }
}

TEST(TelemetryReplayTest, MissingAssetsAreCountedNotFatal) {
  TelemetryLog log;
  emit(log, 1, 0, serve::RequestKind::kDtPolicy, 0, 17.0, 0, /*version=*/42);
  TelemetryTrace trace;
  log.drain(trace.records);

  const ReplayReport report = replay_trace(trace, ReplayAssets{}, ReplayConfig{});
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(report.skipped_missing_assets, 1u);
  EXPECT_FALSE(report.bit_identical());
}

}  // namespace
}  // namespace verihvac::adapt
