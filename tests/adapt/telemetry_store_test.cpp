#include "adapt/telemetry_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/telemetry.hpp"
#include "control/rollout_engine.hpp"
#include "serve/request_scheduler.hpp"
#include "serve/serve_test_utils.hpp"

namespace verihvac::adapt {
namespace {

namespace fs = std::filesystem;

using serve::testing::cold_occupied;
using serve::testing::pool_with_threads;
using serve::testing::steady_forecast;
using serve::testing::toy_model;
using serve::testing::toy_policy;

/// Fresh (empty) scratch directory under the system temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// One synthetic decision straight into the tap (same shape as the
/// telemetry_test emitter; the store tests don't need a scheduler for
/// the framing/recovery cases).
void emit(TelemetryLog& log, serve::SessionId session, std::uint64_t index, double zone_temp) {
  const env::Observation obs = cold_occupied(zone_temp);
  const std::string key = "toy";
  serve::DecisionEvent event;
  event.session = session;
  event.decision_index = index;
  event.session_seed = 1000 + session;
  event.kind = serve::RequestKind::kDtPolicy;
  event.policy_key = &key;
  event.policy_version = 1;
  event.action_index = static_cast<std::size_t>(index % 5);
  event.action = {18.0, 26.0};
  event.observation = &obs;
  event.latency_seconds = 1e-6;
  log.on_decision(event);
}

/// The locked wire bytes of one record — the byte-identity oracle.
std::string record_bytes(const TelemetryRecord& record) {
  std::ostringstream out(std::ios::binary);
  detail::write_record(out, record);
  return out.str();
}

void expect_records_identical(const std::vector<TelemetryRecord>& a,
                              const std::vector<TelemetryRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(record_bytes(a[i]), record_bytes(b[i])) << "record " << i << " diverged";
  }
}

/// XORs one byte of a file in place.
void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TelemetryStoreConfig manual_config(const std::string& dir) {
  TelemetryStoreConfig config;
  config.directory = dir;
  config.start_writer = false;
  return config;
}

TEST(TelemetryStoreTest, RotatedSegmentsLoadBackByteIdentical) {
  const std::string dir = fresh_dir("verihvac_store_test_rotate");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");
  log->register_session(2, 1002, "toy");

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 4;
  std::vector<TelemetryRecord> memory;
  {
    TelemetryStore store(log, config);
    store.enable_fetch_queue();
    for (std::uint64_t d = 0; d < 11; ++d) {
      emit(*log, 1 + (d % 2), d / 2, 17.0 + static_cast<double>(d));
    }
    std::vector<TelemetryRecord> fetched;
    EXPECT_EQ(store.fetch(fetched), 0u);
    memory = fetched;
    store.stop();
    EXPECT_EQ(store.stats().records_persisted, 11u);
    EXPECT_GE(store.stats().rotations, 2u);
  }

  const std::vector<SegmentInfo> segments = list_segments(dir);
  ASSERT_GE(segments.size(), 3u);
  for (const SegmentInfo& segment : segments) {
    EXPECT_EQ(segment.header.sealed, 1u);
    const SegmentVerifyReport report = verify_segment(segment.path);
    EXPECT_TRUE(report.structure_ok) << report.error;
    EXPECT_TRUE(report.fingerprint_ok);
    // A structural-only pass still reports the scanned recorded-action
    // digest (the CLI prints it in FAIL diagnostics).
    EXPECT_EQ(report.replay_fingerprint, segment.header.replay_fingerprint);
  }

  const TelemetryTrace loaded = load_directory(dir);
  expect_records_identical(loaded.records, memory);
  ASSERT_EQ(loaded.sessions.size(), 2u);
  EXPECT_EQ(loaded.sessions[0].id, 1u);
  EXPECT_EQ(loaded.sessions[1].id, 2u);
}

TEST(TelemetryStoreTest, TornTailIsTrimmedCountedAndPrefixRecovered) {
  const std::string dir = fresh_dir("verihvac_store_test_torn");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");

  std::vector<TelemetryRecord> captured;
  {
    TelemetryStoreConfig config = manual_config(dir);
    config.seal_on_close = false;  // crash: leave the .open tail behind
    TelemetryStore store(log, config);
    store.enable_fetch_queue();
    for (std::uint64_t d = 0; d < 6; ++d) emit(*log, 1, d, 17.0 + static_cast<double>(d));
    store.fetch(captured);
    store.stop();
  }
  ASSERT_EQ(captured.size(), 6u);

  // Cut into the last frame: the torn record must be detected and
  // trimmed, never silently replayed.
  fs::path open_tail;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".open") open_tail = entry.path();
  }
  ASSERT_FALSE(open_tail.empty());
  fs::resize_file(open_tail, fs::file_size(open_tail) - 7);

  TelemetryStore recovered(std::make_shared<TelemetryLog>(), manual_config(dir));
  EXPECT_EQ(recovered.stats().truncations, 1u);
  EXPECT_EQ(recovered.stats().records_dropped_torn, 1u);
  EXPECT_GT(recovered.stats().bytes_dropped_torn, 0u);  // the trimmed span is sized, not just flagged
  recovered.stop();

  const TelemetryTrace loaded = load_directory(dir);
  captured.pop_back();
  expect_records_identical(loaded.records, captured);
}

TEST(TelemetryStoreTest, FlippedPayloadByteIsRefusedNeverReplayed) {
  const std::string dir = fresh_dir("verihvac_store_test_flip");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");
  {
    TelemetryStore store(log, manual_config(dir));
    for (std::uint64_t d = 0; d < 4; ++d) emit(*log, 1, d, 18.0);
    store.pump_once();
    store.stop();
  }
  const std::vector<SegmentInfo> segments = list_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string path = segments[0].path;

  // A flip inside a frame *body* trips that frame's body CRC.
  flip_byte(path, kSegmentHeaderBytes + 60);
  TelemetryTrace into;
  EXPECT_THROW(read_segment(path, into), std::runtime_error);
  const SegmentVerifyReport body_report = verify_segment(path);
  EXPECT_FALSE(body_report.structure_ok);
  EXPECT_FALSE(body_report.ok());
  flip_byte(path, kSegmentHeaderBytes + 60);  // restore

  // A flip inside a frame *header* trips the chained payload CRC (the
  // body bytes themselves still hash clean).
  flip_byte(path, kSegmentHeaderBytes + 5);  // body_crc field of frame 0
  EXPECT_FALSE(verify_segment(path).structure_ok);
  flip_byte(path, kSegmentHeaderBytes + 5);  // restore
  EXPECT_TRUE(verify_segment(path).ok());
}

TEST(TelemetryStoreTest, CorruptedFileHeaderIsRefused) {
  const std::string dir = fresh_dir("verihvac_store_test_header");
  auto log = std::make_shared<TelemetryLog>();
  {
    TelemetryStore store(log, manual_config(dir));
    emit(*log, 1, 0, 18.0);
    store.pump_once();
    store.stop();
  }
  const std::vector<SegmentInfo> segments = list_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  flip_byte(segments[0].path, 8);  // inside the fixed header fields
  EXPECT_THROW(read_segment_header(segments[0].path), std::runtime_error);
  EXPECT_THROW(list_segments(dir), std::runtime_error);
}

TEST(TelemetryStoreTest, CompactionMergesAndDropsEvictedSessions) {
  const std::string dir = fresh_dir("verihvac_store_test_compact");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");
  log->register_session(2, 1002, "toy");

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 3;
  TelemetryStore store(log, config);
  for (std::uint64_t d = 0; d < 12; ++d) {
    emit(*log, 1 + (d % 2), d / 2, 17.0 + static_cast<double>(d));
  }
  store.pump_once();
  store.seal_active();
  const std::size_t sealed_before = list_segments(dir).size();
  ASSERT_GE(sealed_before, 3u);

  store.note_sessions_evicted({1});
  EXPECT_EQ(store.stats().eviction_tombstones, 1u);
  EXPECT_TRUE(store.compact_now());
  EXPECT_EQ(store.stats().records_dropped_evicted, 6u);
  EXPECT_GE(store.stats().compactions, 1u);
  EXPECT_LT(list_segments(dir).size(), sealed_before);
  // Once no sealed segment can still hold session 1's records, its
  // eviction tombstone is pruned — the set stays bounded for life.
  EXPECT_EQ(store.stats().eviction_tombstones, 0u);
  store.stop();

  const TelemetryTrace loaded = load_directory(dir);
  ASSERT_EQ(loaded.records.size(), 6u);
  for (const TelemetryRecord& record : loaded.records) EXPECT_EQ(record.session, 2u);
  for (const SegmentInfo& segment : list_segments(dir)) {
    EXPECT_TRUE(verify_segment(segment.path).ok());
  }
}

TEST(TelemetryStoreTest, PersistFailureDegradesInsteadOfThrowing) {
  const std::string dir = fresh_dir("verihvac_store_test_persistfail");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");

  TelemetryStore store(log, manual_config(dir));
  store.enable_fetch_queue();
  emit(*log, 1, 0, 18.0);
  store.pump_once();
  store.seal_active();
  EXPECT_EQ(store.stats().persist_errors, 0u);

  // Yank the disk out from under the store: a plain file now sits where
  // the segment directory was, so every subsequent segment open fails.
  fs::remove_all(dir);
  std::ofstream(dir).put('x');

  for (std::uint64_t d = 1; d <= 4; ++d) {
    emit(*log, 1, d, 18.0);
    EXPECT_NO_THROW(store.pump_once());  // the writer thread runs exactly this
  }
  const TelemetryStore::Stats stats = store.stats();
  EXPECT_GE(stats.persist_errors, 3u);
  EXPECT_TRUE(store.persistence_disabled());
  EXPECT_EQ(stats.records_dropped_persist, 4u);  // the gap is ledgered, not silent

  // The adaptation hand-off seam outlives the disk: every record (the
  // persisted one and all four dropped ones) still reaches fetch(), and
  // shutdown stays exception-free.
  std::vector<TelemetryRecord> fetched;
  EXPECT_NO_THROW(store.fetch(fetched));
  EXPECT_EQ(fetched.size(), 5u);
  EXPECT_NO_THROW(store.stop());
  fs::remove(dir);
}

TEST(TelemetryStoreTest, InterruptedCompactionRecoversFromManifest) {
  const std::string dir = fresh_dir("verihvac_store_test_compactcrash");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");
  log->register_session(2, 1002, "toy");

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 3;
  TelemetryStore store(log, config);
  for (std::uint64_t d = 0; d < 12; ++d) {
    emit(*log, 1 + (d % 2), d / 2, 17.0 + static_cast<double>(d));
  }
  store.pump_once();
  store.seal_active();

  // Snapshot the pre-compaction segments (the compaction "inputs").
  const std::string backup = fresh_dir("verihvac_store_test_compactcrash_backup");
  std::vector<std::string> input_names;
  for (const SegmentInfo& segment : list_segments(dir)) {
    const std::string name = fs::path(segment.path).filename().string();
    input_names.push_back(name);
    fs::copy_file(segment.path, fs::path(backup) / name);
  }
  ASSERT_GE(input_names.size(), 3u);

  store.note_sessions_evicted({1});
  ASSERT_TRUE(store.compact_now());
  store.stop();
  const std::vector<SegmentInfo> after = list_segments(dir);
  ASSERT_EQ(after.size(), 1u);
  const std::string merged_name = fs::path(after[0].path).filename().string();
  const TelemetryTrace compacted = load_directory(dir);
  ASSERT_EQ(compacted.records.size(), 6u);

  const auto write_manifest = [&](const std::string& where, const std::string& tmp_name) {
    std::ofstream manifest(fs::path(where) / (merged_name + ".compact"));
    manifest << merged_name << "\n" << tmp_name << "\n";
    for (const std::string& name : input_names) manifest << name << "\n";
  };
  const auto reopen_and_load = [](const std::string& where) {
    TelemetryStore recovered(std::make_shared<TelemetryLog>(), manual_config(where));
    recovered.stop();
    return load_directory(where);
  };

  // Crash A: merge write interrupted before the manifest existed — the
  // orphan .tmp is garbage, the inputs are intact and authoritative.
  const std::string dir_a = fresh_dir("verihvac_store_test_compactcrash_a");
  for (const std::string& name : input_names) {
    fs::copy_file(fs::path(backup) / name, fs::path(dir_a) / name);
  }
  std::ofstream(fs::path(dir_a) / (merged_name + ".tmp"), std::ios::binary) << "torn";
  const TelemetryTrace loaded_a = reopen_and_load(dir_a);
  EXPECT_FALSE(fs::exists(fs::path(dir_a) / (merged_name + ".tmp")));
  EXPECT_EQ(loaded_a.records.size(), 12u);  // nothing lost, nothing duplicated

  // Crash B: manifest written, rename not yet done — recovery must finish
  // the swap from the complete .tmp and remove every input.
  const std::string dir_b = fresh_dir("verihvac_store_test_compactcrash_b");
  for (const std::string& name : input_names) {
    fs::copy_file(fs::path(backup) / name, fs::path(dir_b) / name);
  }
  fs::copy_file(after[0].path, fs::path(dir_b) / (merged_name + ".tmp"));
  write_manifest(dir_b, merged_name + ".tmp");
  const TelemetryTrace loaded_b = reopen_and_load(dir_b);
  expect_records_identical(loaded_b.records, compacted.records);

  // Crash C: renamed but died mid input-removal — the stale input must go
  // (its records are already inside the merged segment).
  const std::string dir_c = fresh_dir("verihvac_store_test_compactcrash_c");
  fs::copy_file(after[0].path, fs::path(dir_c) / merged_name);
  fs::copy_file(fs::path(backup) / input_names.back(), fs::path(dir_c) / input_names.back());
  write_manifest(dir_c, merged_name + ".tmp");
  const TelemetryTrace loaded_c = reopen_and_load(dir_c);
  EXPECT_FALSE(fs::exists(fs::path(dir_c) / input_names.back()));
  expect_records_identical(loaded_c.records, compacted.records);
}

TEST(TelemetryStoreTest, RetentionDeletesOldestAndCountsDrops) {
  const std::string dir = fresh_dir("verihvac_store_test_retain");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 2;
  config.retain_max_segments = 2;
  TelemetryStore store(log, config);
  for (std::uint64_t d = 0; d < 10; ++d) emit(*log, 1, d, 18.0);
  store.pump_once();
  store.stop();

  std::size_t sealed = 0;
  for (const SegmentInfo& segment : list_segments(dir)) sealed += segment.header.sealed;
  EXPECT_LE(sealed, 2u + 1u);  // bound applies to sealed segments before the final seal
  EXPECT_GT(store.stats().records_dropped_retention, 0u);
}

TEST(TelemetryStoreTest, DirectoryDatasetMatchesTraceDataset) {
  const std::string dir = fresh_dir("verihvac_store_test_dataset");
  auto log = std::make_shared<TelemetryLog>();
  log->register_session(1, 1001, "toy");
  log->register_session(2, 1002, "toy");

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 3;  // transitions must pair across segments
  TelemetryStore store(log, config);
  for (std::uint64_t d = 0; d < 10; ++d) {
    emit(*log, 1 + (d % 2), d / 2, 16.0 + static_cast<double>(d));
  }
  store.pump_once();
  store.stop();

  const dyn::TransitionDataset streamed = directory_to_dataset(dir);
  const dyn::TransitionDataset loaded = trace_to_dataset(load_directory(dir));
  ASSERT_EQ(streamed.size(), loaded.size());
  EXPECT_EQ(streamed.size(), 8u);  // 2 sessions x (5 records -> 4 transitions)
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed.at(i).input, loaded.at(i).input);
    EXPECT_DOUBLE_EQ(streamed.at(i).next_zone_temp, loaded.at(i).next_zone_temp);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: live serving through the scheduler tap, persisted to disk,
// then replay-certified from the segments alone at 1/4/8 threads.

TEST(TelemetryStoreReplayTest, SegmentsReplayBitIdenticallyAcrossThreadCounts) {
  const std::string dir = fresh_dir("verihvac_store_test_replay");
  const auto policy = toy_policy();
  const auto model = toy_model();
  control::RandomShootingConfig rs;
  rs.samples = 24;
  rs.horizon = 4;

  auto log = std::make_shared<TelemetryLog>();
  auto registry = std::make_shared<serve::PolicyRegistry>();
  auto sessions = std::make_shared<serve::SessionManager>();
  const std::uint64_t policy_version = registry->install("toy", policy);
  serve::RequestScheduler scheduler({}, registry, sessions, rs, control::ActionSpace{},
                                    env::RewardConfig{}, pool_with_threads(2));
  const std::uint64_t model_generation = scheduler.install_model("toy", model);
  scheduler.set_tap(log);

  std::vector<serve::SessionId> ids;
  for (std::size_t s = 0; s < 2; ++s) {
    serve::SessionConfig session;
    session.policy_key = "toy";
    session.seed = 6000 + 17 * s;
    ids.push_back(sessions->open(session));
    log->register_session(ids.back(), session.seed, session.policy_key);
  }

  TelemetryStoreConfig config = manual_config(dir);
  config.segment_max_records = 3;  // replay must hold across rotation
  TelemetryStore store(log, config);
  for (std::size_t round = 0; round < 4; ++round) {
    std::vector<serve::ControlRequest> batch;
    for (std::size_t s = 0; s < ids.size(); ++s) {
      serve::ControlRequest request;
      request.session = ids[s];
      request.kind = s == 0 ? serve::RequestKind::kDtPolicy : serve::RequestKind::kMbrlFallback;
      request.observation = cold_occupied(15.0 + static_cast<double>(round + s));
      if (request.kind == serve::RequestKind::kMbrlFallback) {
        request.forecast = steady_forecast(request.observation, rs.horizon);
      }
      batch.push_back(std::move(request));
    }
    scheduler.serve_batch(batch);
    store.pump_once();
  }
  store.stop();

  ReplayAssets assets;
  assets.policies[policy_version] = policy;
  assets.models[model_generation] = model;

  const std::vector<SegmentInfo> segments = list_segments(dir);
  ASSERT_GE(segments.size(), 2u);
  const TelemetryTrace trace = load_directory(dir);
  ASSERT_EQ(trace.records.size(), 8u);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    ReplayConfig replay;
    replay.rs = rs;
    replay.engine = std::make_shared<const control::RolloutEngine>(
        control::RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
    for (const SegmentInfo& segment : segments) {
      const SegmentVerifyReport report = verify_segment(segment.path, &assets, &replay);
      EXPECT_TRUE(report.replayed_pass);
      EXPECT_TRUE(report.ok()) << segment.path << " at " << threads
                               << " threads: " << report.error;
      EXPECT_EQ(report.matched, report.replayed);
    }
    const ReplayReport report = replay_trace(trace, assets, replay);
    EXPECT_EQ(report.replayed, trace.records.size());
    EXPECT_TRUE(report.bit_identical()) << "disk replay diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace verihvac::adapt
