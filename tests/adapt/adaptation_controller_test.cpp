// Closed-loop adaptation: drift in telemetry -> retrain -> certify ->
// shadow gate -> hot-swap, with the certified-promotion guarantee and
// seeded determinism locked by tests.
#include "adapt/adaptation_controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve_test_utils.hpp"

namespace verihvac::adapt {
namespace {

using serve::testing::cold_occupied;
using serve::testing::pool_with_threads;
using serve::testing::toy_plant;
using serve::testing::toy_policy;

/// The building after equipment wear: heating delivers 30% less than the
/// historical plant the model was trained on (drifted equilibrium ~19.2 C
/// at 15 C outdoors vs ~21.2 C healthy — detectable, still certifiable
/// inside the test's wide comfort band).
double drifted_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  double dt = 0.08 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.28 * std::min(a.heating_c - t, 1.2);
  if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
  return t + dt;
}

/// Dynamics model trained on toy_plant over the region the telemetry
/// trajectories actually visit (mild shoulder-season outdoors), so the
/// pre-drift residual baseline is small and the drift shift stands out.
std::shared_ptr<const dyn::DynamicsModel> loop_model() {
  Rng rng(1);
  dyn::TransitionDataset data;
  for (int i = 0; i < 1500; ++i) {
    dyn::Transition t;
    t.input = {rng.uniform(17.0, 24.0), rng.uniform(12.0, 18.0), 50.0, 3.0,
               rng.uniform(0.0, 400.0), 11.0};
    t.action.heating_c = 22.5;
    t.action.cooling_c = 26.0;
    t.next_zone_temp = toy_plant(t.input, t.action);
    data.add(t);
  }
  dyn::DynamicsModelConfig config;
  config.trainer.epochs = 60;
  auto model = std::make_shared<dyn::DynamicsModel>(config);
  model->train(data);
  return model;
}

/// One serving stack + telemetry + controller over the shared toy assets.
struct Loop {
  std::shared_ptr<TelemetryLog> log = std::make_shared<TelemetryLog>();
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::unique_ptr<AdaptationController> controller;
  std::shared_ptr<const dyn::DynamicsModel> model;
  std::uint64_t base_policy_version = 0;
  serve::SessionId session = 0;
  std::uint64_t next_decision = 0;
  double zone_temp = 20.4;

  explicit Loop(const AdaptationConfig& config, std::size_t threads = 2,
                std::shared_ptr<dyn::EnsembleDynamics> ensemble = nullptr) {
    model = loop_model();
    const auto policy = toy_policy();
    base_policy_version = registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(
        serve::SchedulerConfig{}, registry, sessions, control::RandomShootingConfig{16, 3, 0.99},
        control::ActionSpace{}, env::RewardConfig{}, pool_with_threads(threads));
    scheduler->install_model("toy", model);
    scheduler->set_tap(log);

    controller = std::make_unique<AdaptationController>(config, log, registry, sessions,
                                                        *scheduler, pool_with_threads(threads));
    ClusterAssets assets;
    assets.model = model;
    assets.ensemble = std::move(ensemble);
    assets.env.days = 1;
    controller->register_cluster("toy", assets);

    serve::SessionConfig session_config;
    session_config.policy_key = "toy";
    session_config.seed = 4242;
    session = sessions->open(session_config);
    log->register_session(session, session_config.seed, session_config.policy_key);
  }

  /// Emits `n` telemetry decisions whose next states follow `plant`:
  /// an occupied trajectory at mild outdoors under a fixed setpoint
  /// command, settling around 21 C on the healthy plant.
  template <typename Plant>
  void emit_decisions(std::size_t n, Plant&& plant) {
    const sim::SetpointPair action{22.5, 26.0};
    for (std::size_t i = 0; i < n; ++i) {
      env::Observation obs = cold_occupied(zone_temp);
      obs.weather.outdoor_temp_c = 15.0;
      const std::string key = "toy";
      serve::DecisionEvent event;
      event.session = session;
      event.decision_index = next_decision++;
      event.session_seed = 4242;
      event.kind = serve::RequestKind::kDtPolicy;
      event.policy_key = &key;
      event.policy_version = base_policy_version;
      event.action_index = 0;
      event.action = action;
      event.observation = &obs;
      log->on_decision(event);

      zone_temp = plant(obs.to_vector(), action);
    }
  }
};

AdaptationConfig quick_config() {
  AdaptationConfig config;
  config.drift.ph_delta = 0.01;
  config.drift.ph_lambda = 0.5;
  config.drift.min_samples = 16;
  config.min_transitions = 48;
  config.fine_tune_epochs = 10;
  config.probabilistic_samples = 150;
  // Mechanism under test is the loop, not paper-grade safety: a wide
  // comfort band and a modest threshold keep toy-plant certification
  // stable; the bench drives the real thresholds on real pipeline assets.
  config.criteria.comfort = {17.0, 26.0};
  config.criteria.safe_probability_threshold = 0.5;
  config.viper.iterations = 2;
  config.viper.steps_per_iteration = 12;
  config.viper.mc_repeats = 1;
  config.teacher_rs = {12, 3, 0.99};
  config.seed = 99;
  return config;
}

TEST(AdaptationControllerTest, QuietTelemetryNeverAdapts) {
  Loop loop(quick_config());
  loop.emit_decisions(120, toy_plant);
  EXPECT_EQ(loop.controller->pump(), 0u);
  EXPECT_FALSE(loop.controller->monitor().drifted("toy"));
  EXPECT_TRUE(loop.controller->history().empty());
  EXPECT_GT(loop.controller->stats().transitions, 0u);
}

TEST(AdaptationControllerTest, DriftTriggersCertifiedPromotionAndHotSwap) {
  Loop loop(quick_config());
  // Healthy phase establishes the residual baseline, then the plant
  // degrades underneath the same serving stack.
  loop.emit_decisions(80, toy_plant);
  ASSERT_EQ(loop.controller->pump(), 0u);
  loop.emit_decisions(120, drifted_plant);
  const std::size_t attempts = loop.controller->pump();
  ASSERT_EQ(attempts, 1u);

  const auto history = loop.controller->history();
  ASSERT_EQ(history.size(), 1u);
  const AdaptationReport& report = history.front();
  EXPECT_EQ(report.cluster, "toy");
  EXPECT_GT(report.train_transitions, 0u);
  EXPECT_GT(report.holdout_transitions, 0u);
  ASSERT_TRUE(report.certified) << "formal pass=" << report.formal.all_pass()
                                << " safe_prob=" << report.probabilistic.safe_probability;
  EXPECT_TRUE(report.formal.all_pass());
  ASSERT_TRUE(report.promoted);

  // The hot swap actually landed: new bundle version in the registry, new
  // model generation in the scheduler, fresh drift baseline.
  EXPECT_GT(report.promoted_policy_version, loop.base_policy_version);
  EXPECT_EQ(loop.registry->lookup("toy").version, report.promoted_policy_version);
  EXPECT_GT(report.promoted_model_generation, 1u);
  EXPECT_FALSE(loop.controller->monitor().drifted("toy"));
  EXPECT_EQ(loop.controller->stats().adaptations_promoted, 1u);

  // In-flight serving never noticed: a DT request on the session still
  // answers, now on the promoted bundle.
  serve::ControlRequest request;
  request.session = loop.session;
  request.kind = serve::RequestKind::kDtPolicy;
  request.observation = cold_occupied(21.0);
  EXPECT_EQ(loop.scheduler->serve(request).policy_version, report.promoted_policy_version);
}

TEST(AdaptationControllerTest, PromotionIsDeterministicAcrossThreadCounts) {
  // Same telemetry, pools of 1 vs 4 threads: the promoted bundle and the
  // certification numbers must agree bit-for-bit (the engines' lock-step
  // invariants carried through the whole loop).
  std::vector<std::string> policy_texts;
  std::vector<double> safe_probs;
  for (const std::size_t threads : {1u, 4u}) {
    Loop loop(quick_config(), threads);
    loop.emit_decisions(80, toy_plant);
    loop.controller->pump();
    loop.emit_decisions(120, drifted_plant);
    loop.controller->pump();
    const auto history = loop.controller->history();
    ASSERT_EQ(history.size(), 1u);
    ASSERT_TRUE(history.front().promoted);
    policy_texts.push_back(loop.registry->lookup("toy").policy->to_text());
    safe_probs.push_back(history.front().probabilistic.safe_probability);
  }
  EXPECT_EQ(policy_texts[0], policy_texts[1]);
  EXPECT_EQ(safe_probs[0], safe_probs[1]);
}

TEST(AdaptationControllerTest, UncertifiableBundleIsNeverPromoted) {
  AdaptationConfig config = quick_config();
  config.criteria.safe_probability_threshold = 1.1;  // unsatisfiable: p <= 1
  Loop loop(config);
  loop.emit_decisions(80, toy_plant);
  loop.controller->pump();
  loop.emit_decisions(120, drifted_plant);
  loop.controller->pump();

  const auto history = loop.controller->history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history.front().certified);
  EXPECT_FALSE(history.front().promoted);
  // The registry still serves the original bundle.
  EXPECT_EQ(loop.registry->lookup("toy").version, loop.base_policy_version);
  EXPECT_EQ(loop.controller->stats().adaptations_promoted, 0u);

  // A failed attempt must not dead-end the cluster (the monitor alarm
  // stays latched, so no new event will arrive): it retries — but only
  // once materially fresh telemetry accumulated, never in a tight loop.
  EXPECT_EQ(loop.controller->pump(), 0u);  // nothing new yet
  loop.emit_decisions(60, drifted_plant);  // >= min_transitions fresh
  EXPECT_EQ(loop.controller->pump(), 1u);
  EXPECT_EQ(loop.controller->history().size(), 2u);
}

TEST(AdaptationControllerTest, ShadowGateBlocksPromotion) {
  AdaptationConfig config = quick_config();
  // Candidate must beat the incumbent by a full violation-rate point —
  // impossible, so even a certified bundle is held back.
  config.shadow_margin = -1.1;
  Loop loop(config);
  loop.emit_decisions(80, toy_plant);
  loop.controller->pump();
  loop.emit_decisions(120, drifted_plant);
  loop.controller->pump();

  const auto history = loop.controller->history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history.front().shadow_passed);
  EXPECT_FALSE(history.front().promoted);
  EXPECT_EQ(loop.registry->lookup("toy").version, loop.base_policy_version);
}

TEST(AdaptationControllerTest, AlarmWaitsForMinTransitions) {
  AdaptationConfig config = quick_config();
  config.min_transitions = 500;
  Loop loop(config);
  loop.emit_decisions(80, toy_plant);
  loop.controller->pump();
  loop.emit_decisions(120, drifted_plant);
  // Alarm fires but the snapshot is too small: armed, not acted on.
  EXPECT_EQ(loop.controller->pump(), 0u);
  EXPECT_TRUE(loop.controller->monitor().drifted("toy"));
  EXPECT_TRUE(loop.controller->history().empty());

  // Enough telemetry arrives: the armed alarm is finally served.
  loop.emit_decisions(400, drifted_plant);
  EXPECT_EQ(loop.controller->pump(), 1u);
  EXPECT_EQ(loop.controller->history().size(), 1u);
}

TEST(AdaptationControllerTest, EnsembleResidualsDriveDetectionAndFineTune) {
  // With a trained ensemble registered, residuals come from the ensemble
  // mean and the adaptation fine-tunes the members too.
  auto ensemble = std::make_shared<dyn::EnsembleDynamics>([] {
    dyn::EnsembleConfig config;
    config.members = 2;
    config.member_config.trainer.epochs = 40;
    return config;
  }());
  {
    Rng rng(1);
    dyn::TransitionDataset data;
    for (int i = 0; i < 1000; ++i) {
      dyn::Transition t;
      t.input = {rng.uniform(17.0, 24.0), rng.uniform(12.0, 18.0), 50.0, 3.0,
                 rng.uniform(0.0, 400.0), 11.0};
      t.action = {22.5, 26.0};
      t.next_zone_temp = toy_plant(t.input, t.action);
      data.add(t);
    }
    ensemble->train(data);
  }

  Loop loop(quick_config(), /*threads=*/2, ensemble);
  loop.emit_decisions(80, toy_plant);
  loop.controller->pump();
  loop.emit_decisions(120, drifted_plant);
  EXPECT_EQ(loop.controller->pump(), 1u);
  const auto history = loop.controller->history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(ensemble->trained());
}

TEST(AdaptationControllerTest, BackgroundWorkerPumpsUntilStopped) {
  AdaptationConfig config = quick_config();
  config.poll_interval = std::chrono::milliseconds(5);
  Loop loop(config);
  loop.emit_decisions(60, toy_plant);

  loop.controller->start();
  EXPECT_TRUE(loop.controller->running());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (loop.controller->stats().records_drained < 60 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop.controller->stop();
  EXPECT_FALSE(loop.controller->running());
  EXPECT_GE(loop.controller->stats().records_drained, 60u);

  // stop() is idempotent and restart works.
  loop.controller->stop();
  loop.controller->start();
  loop.controller->stop();
}

TEST(AdaptationControllerTest, HousekeepingEvictsIdleSessions) {
  AdaptationConfig config = quick_config();
  config.evict_idle_decisions = 10;
  Loop loop(config);

  // A second session decides once, then goes idle while the main session
  // keeps the admission clock moving.
  serve::SessionConfig idle_config;
  idle_config.policy_key = "toy";
  const serve::SessionId idle = loop.sessions->open(idle_config);
  loop.sessions->begin_decision(idle, serve::RequestKind::kDtPolicy, cold_occupied());
  loop.emit_decisions(60, toy_plant);
  for (int i = 0; i < 60; ++i) {
    loop.sessions->begin_decision(loop.session, serve::RequestKind::kDtPolicy, cold_occupied());
  }

  ASSERT_TRUE(loop.sessions->contains(idle));
  loop.controller->pump();
  EXPECT_FALSE(loop.sessions->contains(idle));
  EXPECT_TRUE(loop.sessions->contains(loop.session));
  EXPECT_GE(loop.controller->stats().sessions_evicted, 1u);
}

}  // namespace
}  // namespace verihvac::adapt
