#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace verihvac::obs {
namespace {

// The collector is process-global, so every test starts from a clean,
// enabled slate and disables on exit (other tests must not see tracing on).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::global().clear();
    TraceCollector::global().enable();
  }
  void TearDown() override {
    TraceCollector::global().disable();
    TraceCollector::global().clear();
  }
};

/// Minimal recursive-descent JSON reader: enough to prove the dumper's
/// output is well-formed (objects/arrays/strings/numbers/literals) the way
/// `json.load` would, without needing a JSON dependency.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : text_(text) {}

  bool parse() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '-' ||
                                   text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool object() {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      if (!string() || !consume(':') || !value()) return false;
    } while (consume(','));
    return consume('}');
  }

  bool array() {
    if (!consume('[')) return false;
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }

  bool literal(const char* word) {
    skip_ws();
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST_F(TraceTest, SpanRecordsNameCategoryAndDuration) {
  {
    const TraceSpan span("unit.work", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<SpanRecord> spans = TraceCollector::global().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.work");
  EXPECT_STREQ(spans[0].category, "test");
  EXPECT_GE(spans[0].duration_ns, 1000000u);
}

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  TraceCollector::global().disable();
  {
    const TraceSpan span("invisible", "test");
  }
  TraceCollector::global().emit("also.invisible", "test", 0, 100);
  EXPECT_TRUE(TraceCollector::global().snapshot().empty());
}

TEST_F(TraceTest, FinishIsIdempotent) {
  TraceSpan span("once", "test");
  span.finish();
  span.finish();
  EXPECT_EQ(TraceCollector::global().snapshot().size(), 1u);
}

TEST_F(TraceTest, SnapshotIsStartOrdered) {
  TraceCollector& collector = TraceCollector::global();
  collector.emit("third", "test", 300, 10);
  collector.emit("first", "test", 100, 10);
  collector.emit("second", "test", 200, 10);
  const std::vector<SpanRecord> spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "first");
  EXPECT_STREQ(spans[1].name, "second");
  EXPECT_STREQ(spans[2].name, "third");
}

TEST_F(TraceTest, RingWrapCountsDroppedSpans) {
  TraceCollector& collector = TraceCollector::global();
  const std::size_t total = TraceCollector::kRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) collector.emit("wrap", "test", i, 1);
  EXPECT_EQ(collector.snapshot().size(), TraceCollector::kRingCapacity);
  EXPECT_EQ(collector.spans_dropped(), 100u);
  collector.clear();
  EXPECT_TRUE(collector.snapshot().empty());
  EXPECT_EQ(collector.spans_dropped(), 0u);
}

TEST_F(TraceTest, ChromeJsonParsesAndCarriesEveryField) {
  TraceCollector& collector = TraceCollector::global();
  collector.emit("solve", "serve", 1500, 2500);  // 1.5us start, 2.5us duration
  const std::string json = collector.chrome_trace_json();

  MiniJson parser(json);
  EXPECT_TRUE(parser.parse()) << json;

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughDisk) {
  TraceCollector& collector = TraceCollector::global();
  collector.emit("disk.span", "test", 1000, 5000);
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  collector.write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string loaded = buffer.str();
  EXPECT_EQ(loaded, collector.chrome_trace_json());
  MiniJson parser(loaded);
  EXPECT_TRUE(parser.parse());
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceThrowsOnBadPath) {
  EXPECT_THROW(TraceCollector::global().write_chrome_trace("/nonexistent-dir/x/trace.json"),
               std::runtime_error);
}

TEST_F(TraceTest, ConcurrentEmittersNeverTearRecords) {
  TraceCollector& collector = TraceCollector::global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;  // < ring capacity, so nothing drops
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, &go] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        const TraceSpan span("hammer", "test");
      }
    });
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const std::vector<SpanRecord> spans = collector.snapshot();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint32_t> tids;
  for (const SpanRecord& span : spans) {
    ASSERT_STREQ(span.name, "hammer");
    ASSERT_STREQ(span.category, "test");
    tids.insert(span.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace verihvac::obs
