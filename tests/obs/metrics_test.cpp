#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/instruments.hpp"

namespace verihvac::obs {
namespace {

TEST(HistogramBucketsTest, BoundsAreExactPowersOfTwo) {
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_bound(0), 1e-9);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_bound(1), 2e-9);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_bound(30), std::ldexp(1e-9, 30));
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_DOUBLE_EQ(histogram_bucket_upper_bound(i), 2.0 * histogram_bucket_upper_bound(i - 1));
  }
}

TEST(HistogramBucketsTest, BucketForIsInclusiveAtUpperBounds) {
  // A sample exactly on a bucket's upper bound belongs to that bucket
  // (Prometheus `le` semantics), and anything infinitesimally above it
  // spills into the next.
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    const double bound = histogram_bucket_upper_bound(i);
    EXPECT_EQ(histogram_bucket_for(bound), i) << "bound " << bound;
    EXPECT_EQ(histogram_bucket_for(std::nextafter(bound, 1e308)), i + 1);
  }
}

TEST(HistogramBucketsTest, EdgesLandInFirstAndLastBuckets) {
  EXPECT_EQ(histogram_bucket_for(0.0), 0u);
  EXPECT_EQ(histogram_bucket_for(-5.0), 0u);
  EXPECT_EQ(histogram_bucket_for(1e-12), 0u);
  const double last = histogram_bucket_upper_bound(kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_for(last * 1000.0), kHistogramBuckets - 1);
}

TEST(CounterTest, ShardMergeIsExactAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Relaxed sharded cells still never lose an increment: the merge is a
  // plain sum of per-shard totals.
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(4.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.5);
  gauge.add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
}

TEST(HistogramTest, SnapshotCountsAndSumAreExact) {
  Histogram histogram;
  const std::vector<double> samples = {1e-9, 2e-9, 3e-9, 0.001, 0.5, 7.0};
  double sum = 0.0;
  for (double s : samples) {
    histogram.observe(s);
    sum += s;
  }
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_NEAR(snap.sum, sum, 1e-12);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, samples.size());
  EXPECT_EQ(snap.buckets[histogram_bucket_for(1e-9)], 1u);
}

TEST(HistogramTest, NonFiniteSamplesAreDropped) {
  Histogram histogram;
  histogram.observe(std::nan(""));
  histogram.observe(std::numeric_limits<double>::infinity());
  histogram.observe(1.0);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);
}

TEST(HistogramTest, QuantileTracksExactQuantileWithinBucketResolution) {
  Histogram histogram;
  std::vector<double> samples;
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    // Latency-shaped: log-uniform over ~1us .. ~1s.
    const double value = std::exp(rng.uniform(std::log(1e-6), std::log(1.0)));
    histogram.observe(value);
    samples.push_back(value);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double exact = quantile(samples, q);
    const double approx = histogram.snapshot().quantile(q);
    // Log2 buckets: the estimate lands within the bucket holding the
    // target rank, i.e. within a factor of ~2 of the exact quantile (plus
    // a little slack for the gap between adjacent order statistics).
    EXPECT_LE(approx, exact * 2.5 + 1e-12) << "q=" << q;
    EXPECT_GE(approx, exact * 0.4 - 1e-12) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileDegenerateCases) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.snapshot().quantile(0.5), 0.0);
  histogram.observe(0.25);
  const Histogram::Snapshot snap = histogram.snapshot();
  const std::size_t bucket = histogram_bucket_for(0.25);
  const double estimate = snap.quantile(0.5);
  EXPECT_LE(estimate, histogram_bucket_upper_bound(bucket));
  EXPECT_GE(estimate, bucket == 0 ? 0.0 : histogram_bucket_upper_bound(bucket - 1));
}

TEST(MetricsRegistryTest, GetOrCreateAndKindMismatch) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", "help");
  Counter& b = registry.counter("requests_total");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("requests_total"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("requests_total"), std::invalid_argument);
}

TEST(MetricsRegistryTest, InstrumentsAreNameOrdered) {
  MetricsRegistry registry;
  registry.counter("zeta_total");
  registry.gauge("alpha");
  registry.histogram("mid_seconds");
  const std::vector<InstrumentInfo> instruments = registry.instruments();
  ASSERT_EQ(instruments.size(), 3u);
  EXPECT_EQ(instruments[0].name, "alpha");
  EXPECT_EQ(instruments[1].name, "mid_seconds");
  EXPECT_EQ(instruments[2].name, "zeta_total");
}

TEST(MetricsRegistryTest, ExpositionGolden) {
  MetricsRegistry registry;
  registry.counter("jobs_total", "jobs processed").add(3);
  registry.gauge("depth", "queue depth").set(2.5);
  Histogram& h = registry.histogram("latency_seconds", "request latency");
  h.observe(1e-9);  // bucket 0
  h.observe(1e-9);  // bucket 0
  h.observe(2e-9);  // bucket 1
  const std::string expected =
      "# HELP depth queue depth\n"
      "# TYPE depth gauge\n"
      "depth 2.5\n"
      "# HELP jobs_total jobs processed\n"
      "# TYPE jobs_total counter\n"
      "jobs_total 3\n"
      "# HELP latency_seconds request latency\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"1e-09\"} 2\n"
      "latency_seconds_bucket{le=\"2e-09\"} 3\n"
      "latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "latency_seconds_sum 4e-09\n"
      "latency_seconds_count 3\n";
  EXPECT_EQ(registry.expose_text(), expected);
}

TEST(MetricsRegistryTest, JsonSnapshotShape) {
  MetricsRegistry registry;
  registry.counter("jobs_total").add(7);
  registry.gauge("depth").set(1.5);
  registry.histogram("latency_seconds").observe(0.001);
  const std::string json = registry.expose_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentHammer) {
  // Many threads hammering the same instruments through registry lookups
  // and pre-resolved handles; totals must come out exact. ASan/TSan-adjacent
  // CI runs this under sanitizers via the normal test glob.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter& counter = registry.counter("hammer_total");
      Histogram& histogram = registry.histogram("hammer_seconds");
      Gauge& gauge = registry.gauge("hammer_depth");
      for (int i = 0; i < kIterations; ++i) {
        counter.add(1);
        histogram.observe(1e-6 * (t + 1));
        gauge.set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("hammer_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  const Histogram::Snapshot snap = registry.histogram("hammer_seconds").snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(InstrumentCatalogTest, LookupsAreEnforced) {
  EXPECT_THROW(counter("no_such_instrument_total"), std::invalid_argument);
  // Cataloged but a histogram, not a counter.
  EXPECT_THROW(counter("serve_batch_size"), std::invalid_argument);
  EXPECT_NO_THROW(counter("serve_dt_served_total"));
  EXPECT_NO_THROW(histogram("serve_batch_size"));
  EXPECT_NO_THROW(gauge("serve_queue_depth"));
}

TEST(InstrumentCatalogTest, RegisterCatalogExposesEveryInstrument) {
  register_catalog();
  const std::string text = MetricsRegistry::global().expose_text();
  for (const InstrumentSpec& spec : instrument_catalog()) {
    EXPECT_NE(text.find("# TYPE " + std::string(spec.name)), std::string::npos)
        << "missing from exposition: " << spec.name;
  }
}

}  // namespace
}  // namespace verihvac::obs
