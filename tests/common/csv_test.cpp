#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace verihvac {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "verihvac_csv_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(CsvTest, WriteReadRoundTrip) {
  const std::string path = temp_path("round_trip.csv");
  write_csv(path, {"a", "b"}, {{1.0, 2.0}, {3.5, -4.0}});
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");
  ASSERT_EQ(table.rows.size(), 2u);
  const auto col_b = table.numeric_column("b");
  EXPECT_DOUBLE_EQ(col_b[0], 2.0);
  EXPECT_DOUBLE_EQ(col_b[1], -4.0);
}

TEST_F(CsvTest, ColumnIndexMissingReturnsNpos) {
  CsvTable table;
  table.header = {"x", "y"};
  EXPECT_EQ(table.column_index("z"), static_cast<std::size_t>(-1));
  EXPECT_EQ(table.column_index("y"), 1u);
}

TEST_F(CsvTest, NumericColumnMissingThrows) {
  const std::string path = temp_path("missing.csv");
  write_csv(path, {"only"}, {{1.0}});
  const CsvTable table = read_csv(path);
  EXPECT_THROW(table.numeric_column("nope"), std::runtime_error);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/definitely/not/here.csv"), std::runtime_error);
}

TEST_F(CsvTest, WriterStringRows) {
  const std::string path = temp_path("strings.csv");
  {
    CsvWriter w(path);
    w.write_header({"name", "value"});
    w.write_row(std::vector<std::string>{"alpha", "1"});
    w.flush();
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "alpha");
}

TEST_F(CsvTest, DestructorFlushes) {
  const std::string path = temp_path("dtor.csv");
  {
    CsvWriter w(path);
    w.write_header({"v"});
    w.write_row(std::vector<double>{42.0});
    // no explicit flush
  }
  const CsvTable table = read_csv(path);
  EXPECT_DOUBLE_EQ(table.numeric_column("v")[0], 42.0);
}

TEST_F(CsvTest, SkipsBlankLinesAndCr) {
  const std::string path = temp_path("messy.csv");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("h1,h2\r\n\n1,2\r\n", f);
    std::fclose(f);
  }
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header[1], "h2");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST_F(CsvTest, NoHeaderMode) {
  const std::string path = temp_path("no_header.csv");
  write_csv(path, {"x"}, {{5.0}});
  const CsvTable table = read_csv(path, /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  ASSERT_EQ(table.rows.size(), 2u);  // header row counted as data
  EXPECT_EQ(table.rows[0][0], "x");
}

}  // namespace
}  // namespace verihvac
