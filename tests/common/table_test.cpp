#include "common/table.hpp"

#include <gtest/gtest.h>

namespace verihvac {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable table("Title");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(AsciiTableTest, ColumnsAreAligned) {
  AsciiTable table;
  table.set_header({"a", "bbbb"});
  table.add_row({"xxxxx", "y"});
  const std::string out = table.render();
  // Every rendered line between rules must have equal length.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (!line.empty()) {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected) << line;
    }
    start = end == std::string::npos ? out.size() : end + 1;
  }
}

TEST(AsciiTableTest, NumericRowFormatsPrecision) {
  AsciiTable table;
  table.add_row("row", {1.23456, 2.0}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_EQ(out.find("1.235"), std::string::npos);
}

TEST(AsciiTableTest, RaggedRowsTolerated) {
  AsciiTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"only one"});
  EXPECT_NO_THROW(table.render());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_double(2.5, 3), "2.500");
}

}  // namespace
}  // namespace verihvac
