#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace verihvac {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 45u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValuesInclusive) {
  Rng rng(17);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, NormalMomentsMatchStandard) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithMeanAndStd) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsFallsBackToUniform) {
  Rng rng(41);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(43);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(47);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(53);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, CounterStreamsArePureFunctionsOfSeedAndId) {
  // Counter-based derivation: no shared state is consumed, so the same
  // (seed, id) pair yields the same stream regardless of construction
  // order — the contract the parallel verifiers rely on.
  Rng late = Rng::stream(404, 7);
  Rng early = Rng::stream(404, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(early.next(), late.next());
}

TEST(RngTest, CounterStreamsWithDifferentIdsDiffer) {
  Rng a = Rng::stream(404, 0);
  Rng b = Rng::stream(404, 1);
  Rng c = Rng::stream(405, 0);  // adjacent seed, same id
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    if (va == b.next()) ++same_ab;
    if (va == c.next()) ++same_ac;
  }
  EXPECT_LT(same_ab, 2);
  EXPECT_LT(same_ac, 2);
}

TEST(RngTest, CounterStreamDrawsAreWellDistributed) {
  // First draw across many adjacent stream ids should look uniform (the
  // verifier takes exactly this projection: one sample per stream).
  std::vector<int> bins(10, 0);
  for (std::uint64_t id = 0; id < 5000; ++id) {
    Rng rng = Rng::stream(17, id);
    ++bins[static_cast<std::size_t>(rng.uniform() * 10.0)];
  }
  for (int count : bins) {
    EXPECT_GT(count, 350);
    EXPECT_LT(count, 650);
  }
}

TEST(RngTest, IndexStaysInRange) {
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(13), 13u);
}

/// Chi-squared-style uniformity sweep over several seeds.
class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, BinnedUniformIsFlat) {
  Rng rng(GetParam());
  constexpr int kBins = 16;
  constexpr int kDraws = 64000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(rng.uniform() * kBins)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityTest,
                         ::testing::Values(1ull, 42ull, 1234567ull, 0xDEADBEEFull));

}  // namespace
}  // namespace verihvac
