#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/instruments.hpp"

namespace verihvac {
namespace {

TEST(LoggingTest, UptimeIsMonotonicAndStartsNearZero) {
  const double first = log_uptime_seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_LT(first, 3600.0);  // since process start, not since the epoch
  const double second = log_uptime_seconds();
  EXPECT_GE(second, first);
}

TEST(LoggingTest, SetThresholdWinsOverEnvironment) {
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(original);
  EXPECT_EQ(log_threshold(), original);
}

TEST(LoggingTest, ThresholdReadsAreThreadSafe) {
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&go, &mismatches] {
      while (!go.load()) {
      }
      for (int i = 0; i < 1000; ++i) {
        const LogLevel level = log_threshold();
        if (level < LogLevel::kDebug || level > LogLevel::kError) mismatches.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(LoggingTest, HookSeesEmittedLevelsOnly) {
  static std::atomic<int> warns{0};
  static std::atomic<int> errors{0};
  warns.store(0);
  errors.store(0);

  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::kWarn);
  const LogHook previous = set_log_hook([](LogLevel level) {
    if (level == LogLevel::kWarn) warns.fetch_add(1);
    if (level == LogLevel::kError) errors.fetch_add(1);
  });
  log_info("suppressed below threshold");
  log_warn("observed");
  log_error("also observed");
  set_log_hook(previous);
  set_log_threshold(original);

  EXPECT_EQ(warns.load(), 1);
  EXPECT_EQ(errors.load(), 1);
}

TEST(LoggingTest, WarnAndErrorLinesFeedObsCounters) {
  // Touching the global registry installs the obs log hook; counters are
  // process-cumulative, so assert on deltas.
  const LogLevel original = log_threshold();
  set_log_threshold(LogLevel::kWarn);
  const std::uint64_t warns_before = obs::counter("log_warn_total").value();
  const std::uint64_t errors_before = obs::counter("log_error_total").value();
  log_warn("one warn for the registry");
  log_error("one error for the registry");
  log_info("suppressed: must not count");
  set_log_threshold(original);

  EXPECT_EQ(obs::counter("log_warn_total").value() - warns_before, 1u);
  EXPECT_EQ(obs::counter("log_error_total").value() - errors_before, 1u);
}

}  // namespace
}  // namespace verihvac
