#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "control/rollout_engine.hpp"

namespace verihvac::common {
namespace {

TEST(TaskPoolTest, CoversEveryIndexExactlyOnce) {
  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/1});
  for (std::size_t n : {0u, 1u, 3u, 16u, 100u, 1013u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(TaskPoolTest, WorkerIdsStayInRange) {
  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/1});
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(256, [&](std::size_t worker, std::size_t, std::size_t) {
    if (worker >= pool.thread_count()) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(TaskPoolTest, SmallBatchRunsInlineOnCaller) {
  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/64});
  std::vector<std::size_t> workers;
  pool.parallel_for(8, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    // Inline path: single invocation covering the whole range on worker 0.
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 8u);
    workers.push_back(worker);
  });
  EXPECT_EQ(workers.size(), 1u);
}

TEST(TaskPoolTest, SingleThreadConfigSpawnsNoWorkers) {
  TaskPool pool({/*threads=*/1, /*min_parallel_batch=*/1});
  EXPECT_EQ(pool.thread_count(), 1u);
  int calls = 0;
  pool.parallel_for(32, [&](std::size_t, std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(end - begin, 32u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPoolTest, PropagatesExceptionsFromWorkers) {
  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/1});
  EXPECT_THROW(pool.parallel_for(128,
                                 [&](std::size_t, std::size_t begin, std::size_t) {
                                   if (begin == 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must survive a throwing batch and keep serving work.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(64, [&](std::size_t, std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(TaskPoolTest, PropagatesTypedExceptionFromEveryChunk) {
  // Serving batches requests from many sessions through one pool: a
  // throwing request must surface on the caller as the original type, no
  // matter which worker (pool thread or the caller itself) ran its chunk.
  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/1});
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(pool.parallel_for(64,
                                   [](std::size_t, std::size_t, std::size_t) {
                                     throw std::domain_error("poisoned chunk");
                                   }),
                 std::domain_error);
    // The pool must stay serviceable between throwing batches.
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(32, [&](std::size_t, std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin);
    });
    EXPECT_EQ(covered.load(), 32u);
  }
}

TEST(TaskPoolTest, TwoEnginesShareOnePoolConcurrently) {
  // The serving scheduler and a verification campaign both fan out over
  // the shared pool from *different caller threads*. Concurrent
  // parallel_for calls serialize internally; each call must still cover
  // every index exactly once with correct per-slot writes.
  const auto pool = std::make_shared<const TaskPool>(TaskPoolConfig{4, 1});
  const control::RolloutEngine engine_a(pool);
  const control::RolloutEngine engine_b(pool);

  std::atomic<int> mismatches{0};
  const auto hammer = [&mismatches](const control::RolloutEngine& engine, std::size_t salt) {
    for (std::size_t round = 0; round < 50; ++round) {
      const std::size_t n = 113 + 7 * (round % 5);
      std::vector<std::size_t> out(n, 0);
      engine.parallel_for(n, [&out, salt, round](std::size_t, std::size_t begin,
                                                 std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = i + salt + round;
      });
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != i + salt + round) mismatches.fetch_add(1);
      }
    }
  };
  std::thread other([&] { hammer(engine_b, 1000); });
  hammer(engine_a, 2000);
  other.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(TaskPoolTest, SharedPoolIsReused) {
  const auto a = TaskPool::shared();
  const auto b = TaskPool::shared();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(a->thread_count(), 1u);
}

TEST(TaskPoolTest, SharedRolloutEngineWrapsSharedPool) {
  // Control and verification must share one set of worker threads: the
  // shared rollout engine is a thin client of the shared task pool.
  const auto engine = control::RolloutEngine::shared();
  EXPECT_EQ(engine->pool().get(), TaskPool::shared().get());
  EXPECT_EQ(engine->thread_count(), TaskPool::shared()->thread_count());
}

TEST(TaskPoolTest, AdoptedPoolIsSharedNotCopied) {
  auto pool = std::make_shared<const TaskPool>(TaskPoolConfig{2, 1});
  control::RolloutEngine engine(pool);
  EXPECT_EQ(engine.pool().get(), pool.get());
  EXPECT_EQ(engine.thread_count(), 2u);
  EXPECT_EQ(engine.config().threads, 2u);
}

// The PR-9 metrics seam: an installed hook sees every parallel_for once,
// with the item count, a positive wall time, and the in-flight depth; the
// previous hook comes back from set_metrics_hook for exact restoration.
TEST(TaskPoolTest, MetricsHookObservesEveryFanOut) {
  static std::atomic<std::size_t> calls{0};
  static std::atomic<std::size_t> items{0};
  static std::atomic<int> bad_observations{0};
  calls.store(0);
  items.store(0);
  bad_observations.store(0);

  const TaskPool::MetricsHook previous =
      TaskPool::set_metrics_hook([](std::size_t n, double seconds, std::size_t active) {
        calls.fetch_add(1);
        items.fetch_add(n);
        if (seconds <= 0.0 || active < 1) bad_observations.fetch_add(1);
      });

  TaskPool pool({/*threads=*/4, /*min_parallel_batch=*/1});
  std::atomic<std::size_t> work{0};
  pool.parallel_for(100, [&](std::size_t, std::size_t begin, std::size_t end) {
    work.fetch_add(end - begin);
  });
  pool.parallel_for(3, [&](std::size_t, std::size_t begin, std::size_t end) {
    work.fetch_add(end - begin);
  });
  // n == 0 returns before the observation scope: the hook must not fire.
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {});

  const TaskPool::MetricsHook mine = TaskPool::set_metrics_hook(previous);
  EXPECT_NE(mine, nullptr);
  EXPECT_EQ(calls.load(), 2u);
  EXPECT_EQ(items.load(), 103u);
  EXPECT_EQ(work.load(), 103u);
  EXPECT_EQ(bad_observations.load(), 0);
}

}  // namespace
}  // namespace verihvac::common
