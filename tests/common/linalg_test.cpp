#include "common/linalg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace verihvac {
namespace {

TEST(LinalgTest, SolvesIdentity) {
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto x = solve_linear(identity(3), b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(LinalgTest, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinalgTest, PivotingHandlesZeroDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinalgTest, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(LinalgTest, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::runtime_error);
  EXPECT_THROW(solve_linear(identity(2), {1.0, 2.0, 3.0}), std::runtime_error);
}

TEST(LinalgTest, Norm2AndDot) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({}), 0.0);
}

/// Residual property ||Ax - b|| ~ 0 on random diagonally-dominant systems
/// (the shape the thermal network produces).
class SolveResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolveResidualTest, ResidualIsTiny) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    double off_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      a(r, c) = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(a(r, c));
    }
    a(r, r) = off_sum + rng.uniform(0.5, 2.0);  // diagonal dominance
    b[r] = rng.uniform(-10.0, 10.0);
  }
  const Matrix a_copy = a;
  const auto x = solve_linear(a, b);
  // Residual check against the original matrix.
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += a_copy(r, c) * x[c];
    EXPECT_NEAR(sum, b[r], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveResidualTest, ::testing::Values(1, 2, 4, 8, 10, 16, 32));

}  // namespace
}  // namespace verihvac
