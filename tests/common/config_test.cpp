#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace verihvac {
namespace {

class ConfigTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) { setenv(name, value, 1); }
  void UnsetEnv(const char* name) { unsetenv(name); }
  void TearDown() override {
    for (const char* n : {"VH_TEST_STR", "VH_TEST_NUM", "VH_TEST_FLAG", "VERI_HVAC_FULL"}) {
      unsetenv(n);
    }
  }
};

TEST_F(ConfigTest, EnvOrFallsBackWhenUnset) {
  UnsetEnv("VH_TEST_STR");
  EXPECT_EQ(env_or("VH_TEST_STR", "fallback"), "fallback");
}

TEST_F(ConfigTest, EnvOrReadsValue) {
  SetEnv("VH_TEST_STR", "hello");
  EXPECT_EQ(env_or("VH_TEST_STR", "fallback"), "hello");
}

TEST_F(ConfigTest, EmptyValueFallsBack) {
  SetEnv("VH_TEST_STR", "");
  EXPECT_EQ(env_or("VH_TEST_STR", "fb"), "fb");
}

TEST_F(ConfigTest, LongParsesAndFallsBack) {
  SetEnv("VH_TEST_NUM", "123");
  EXPECT_EQ(env_or_long("VH_TEST_NUM", 7), 123);
  SetEnv("VH_TEST_NUM", "not a number");
  EXPECT_EQ(env_or_long("VH_TEST_NUM", 7), 7);
  UnsetEnv("VH_TEST_NUM");
  EXPECT_EQ(env_or_long("VH_TEST_NUM", 9), 9);
}

TEST_F(ConfigTest, DoubleParses) {
  SetEnv("VH_TEST_NUM", "2.5");
  EXPECT_DOUBLE_EQ(env_or_double("VH_TEST_NUM", 0.0), 2.5);
}

TEST_F(ConfigTest, FlagRecognizesTruthyStrings) {
  for (const char* truthy : {"1", "true", "TRUE", "on", "yes"}) {
    SetEnv("VH_TEST_FLAG", truthy);
    EXPECT_TRUE(env_flag("VH_TEST_FLAG")) << truthy;
  }
  for (const char* falsy : {"0", "false", "off", "no", "banana"}) {
    SetEnv("VH_TEST_FLAG", falsy);
    EXPECT_FALSE(env_flag("VH_TEST_FLAG")) << falsy;
  }
}

TEST_F(ConfigTest, FullScaleFollowsEnv) {
  UnsetEnv("VERI_HVAC_FULL");
  EXPECT_FALSE(full_scale());
  SetEnv("VERI_HVAC_FULL", "1");
  EXPECT_TRUE(full_scale());
}

}  // namespace
}  // namespace verihvac
