#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace verihvac {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchFormulas) {
  Rng rng(5);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.5);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-10);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(HistogramTest, PmfSumsToOne) {
  Histogram h(0.0, 1.0, 7);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  const auto p = h.pmf();
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyPmfIsUniform) {
  Histogram h(0.0, 1.0, 4);
  const auto p = h.pmf();
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(EntropyTest, UniformIsLogN) {
  const std::vector<double> uniform(8, 1.0 / 8.0);
  EXPECT_NEAR(entropy_bits(uniform), 3.0, 1e-12);
}

TEST(EntropyTest, DeterministicIsZero) {
  EXPECT_DOUBLE_EQ(entropy_bits({0.0, 1.0, 0.0}), 0.0);
}

TEST(EntropyTest, UniformMaximizesEntropy) {
  const std::vector<double> uniform(4, 0.25);
  const std::vector<double> skewed = {0.7, 0.1, 0.1, 0.1};
  EXPECT_GT(entropy_bits(uniform), entropy_bits(skewed));
}

TEST(JsdTest, IdenticalDistributionsHaveZeroDistance) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(jensen_shannon_distance(p, p), 0.0, 1e-9);
}

TEST(JsdTest, DisjointDistributionsHaveDistanceOne) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(jensen_shannon_distance(p, q), 1.0, 1e-9);
}

TEST(JsdTest, SymmetricAndBounded) {
  const std::vector<double> p = {0.1, 0.4, 0.5};
  const std::vector<double> q = {0.3, 0.3, 0.4};
  const double d1 = jensen_shannon_distance(p, q);
  const double d2 = jensen_shannon_distance(q, p);
  EXPECT_NEAR(d1, d2, 1e-12);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d1, 1.0);
}

TEST(JsdTest, GrowsWithNoise) {
  // The Fig. 3 premise: adding more noise moves the distribution further
  // from the original.
  Rng rng(21);
  std::vector<double> base;
  for (int i = 0; i < 5000; ++i) base.push_back(rng.normal(0.0, 1.0));
  Histogram hb(-5.0, 5.0, 40);
  hb.add_all(base);

  double prev = 0.0;
  for (double noise : {0.1, 0.5, 1.5}) {
    Histogram hn(-5.0, 5.0, 40);
    Rng rng2(22);
    for (double x : base) hn.add(x + rng2.normal(0.0, noise));
    const double d = jensen_shannon_distance(hb.pmf(), hn.pmf());
    EXPECT_GE(d, prev - 0.02);
    prev = d;
  }
}

TEST(MarginalTest, JsdOfSampleWithItselfIsZero) {
  std::vector<std::vector<double>> a;
  Rng rng(33);
  for (int i = 0; i < 500; ++i) a.push_back({rng.normal(), rng.uniform(), rng.normal(5, 2)});
  EXPECT_NEAR(mean_marginal_jsd(a, a, 20), 0.0, 1e-9);
}

TEST(MarginalTest, JsdSeparatesShiftedSamples) {
  std::vector<std::vector<double>> a;
  std::vector<std::vector<double>> b;
  Rng rng(34);
  for (int i = 0; i < 2000; ++i) {
    a.push_back({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)});
    b.push_back({rng.normal(3.0, 1.0), rng.normal(0.0, 1.0)});
  }
  EXPECT_GT(mean_marginal_jsd(a, b, 20), 0.15);
}

TEST(MarginalTest, EntropyGrowsWithSpread) {
  std::vector<std::vector<double>> narrow;
  std::vector<std::vector<double>> wide;
  Rng rng(35);
  for (int i = 0; i < 2000; ++i) {
    const double z = rng.normal();
    narrow.push_back({z * 0.5, 0.0});
    wide.push_back({z * 0.5 + rng.normal(0.0, 2.0), 0.0});
  }
  // Same bin count over each sample's own support; the noisier sample has
  // a flatter histogram, hence higher entropy (the Fig. 3 right panel).
  EXPECT_GT(sum_marginal_entropy(wide, 30), sum_marginal_entropy(narrow, 30) - 0.5);
}

TEST(StatsTest, MinMaxOf) {
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

}  // namespace
}  // namespace verihvac
