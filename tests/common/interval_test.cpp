#include "common/interval.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace verihvac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, AllIsUnbounded) {
  const Interval iv = Interval::all();
  EXPECT_EQ(iv.lo, -kInf);
  EXPECT_EQ(iv.hi, kInf);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(1e300));
}

TEST(IntervalTest, AtMostAndGreater) {
  const Interval le = Interval::at_most(5.0);
  EXPECT_TRUE(le.contains(5.0));
  EXPECT_FALSE(le.contains(5.1));
  const Interval gt = Interval::greater(5.0);
  EXPECT_TRUE(gt.contains(5.1));
  EXPECT_FALSE(gt.contains(4.9));
}

TEST(IntervalTest, IntersectOverlapping) {
  const Interval a = Interval::bounded(0.0, 10.0);
  const Interval b = Interval::bounded(5.0, 15.0);
  const Interval c = a.intersect(b);
  EXPECT_DOUBLE_EQ(c.lo, 5.0);
  EXPECT_DOUBLE_EQ(c.hi, 10.0);
  EXPECT_FALSE(c.empty());
}

TEST(IntervalTest, IntersectDisjointIsEmpty) {
  const Interval a = Interval::bounded(0.0, 1.0);
  const Interval b = Interval::bounded(2.0, 3.0);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalTest, WidthOfEmptyIsZero) {
  Interval iv{3.0, 1.0};
  EXPECT_TRUE(iv.empty());
  EXPECT_DOUBLE_EQ(iv.width(), 0.0);
  EXPECT_DOUBLE_EQ(Interval::bounded(1.0, 4.0).width(), 3.0);
}

TEST(IntervalTest, ChainedSplitsMimicTreePath) {
  // x <= 10, then x > 3, then x <= 7 -> (3, 7].
  Interval iv = Interval::all();
  iv = iv.intersect(Interval::at_most(10.0));
  iv = iv.intersect(Interval::greater(3.0));
  iv = iv.intersect(Interval::at_most(7.0));
  EXPECT_DOUBLE_EQ(iv.lo, 3.0);
  EXPECT_DOUBLE_EQ(iv.hi, 7.0);
}

TEST(BoxTest, DefaultDimsAreUnbounded) {
  Box box(3);
  EXPECT_EQ(box.size(), 3u);
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.contains({0.0, -1e9, 1e9}));
}

TEST(BoxTest, ClipNarrowsOneDim) {
  Box box(2);
  box.clip(0, Interval::bounded(0.0, 1.0));
  EXPECT_TRUE(box.contains({0.5, 123.0}));
  EXPECT_FALSE(box.contains({1.5, 123.0}));
}

TEST(BoxTest, EmptyAfterContradictoryClips) {
  Box box(2);
  box.clip(1, Interval::at_most(2.0));
  box.clip(1, Interval::greater(5.0));
  EXPECT_TRUE(box.empty());
}

TEST(BoxTest, IntersectIsComponentwise) {
  Box a(2);
  a.clip(0, Interval::bounded(0.0, 10.0));
  Box b(2);
  b.clip(0, Interval::bounded(5.0, 20.0));
  b.clip(1, Interval::at_most(1.0));
  const Box c = a.intersect(b);
  EXPECT_DOUBLE_EQ(c[0].lo, 5.0);
  EXPECT_DOUBLE_EQ(c[0].hi, 10.0);
  EXPECT_DOUBLE_EQ(c[1].hi, 1.0);
}

TEST(BoxTest, ToStringMentionsEveryDim) {
  Box box(2);
  box.clip(0, Interval::bounded(1.0, 2.0));
  const std::string s = box.to_string();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find(" x "), std::string::npos);
}

/// Property: intersection is commutative and contained in both operands.
class BoxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxPropertyTest, IntersectionContainment) {
  const int seed = GetParam();
  Box a(3);
  Box b(3);
  for (std::size_t d = 0; d < 3; ++d) {
    const double base = (seed * 13 + static_cast<int>(d) * 7) % 10;
    a.clip(d, Interval::bounded(base - 2.0, base + 3.0));
    b.clip(d, Interval::bounded(base, base + 5.0));
  }
  const Box ab = a.intersect(b);
  const Box ba = b.intersect(a);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(ab[d].lo, ba[d].lo);
    EXPECT_DOUBLE_EQ(ab[d].hi, ba[d].hi);
    EXPECT_GE(ab[d].lo, a[d].lo);
    EXPECT_LE(ab[d].hi, a[d].hi);
    EXPECT_GE(ab[d].lo, b[d].lo);
    EXPECT_LE(ab[d].hi, b[d].hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace verihvac
