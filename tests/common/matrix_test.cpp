#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

namespace verihvac {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructionFillsValue) {
  Matrix m(2, 3, 1.5);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row(1), (std::vector<double>{4.0, 5.0, 6.0}));
  m.set_row(0, {7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(m(0, 2), 9.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{10.0, 20.0}, {30.0, 40.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = Matrix::multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyNonSquare) {
  Matrix a{{1.0, 0.0, 2.0}};          // 1x3
  Matrix b{{1.0}, {2.0}, {3.0}};      // 3x1
  const Matrix c = Matrix::multiply(a, b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
}

TEST(MatrixTest, MultiplyAtBMatchesExplicitTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};  // 3x2
  Matrix b{{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}, {1.0, 1.0, 0.0}};  // 3x3
  const Matrix expect = Matrix::multiply(a.transposed(), b);
  const Matrix got = Matrix::multiply_at_b(a, b);
  ASSERT_EQ(got.rows(), expect.rows());
  ASSERT_EQ(got.cols(), expect.cols());
  for (std::size_t r = 0; r < got.rows(); ++r)
    for (std::size_t c = 0; c < got.cols(); ++c)
      EXPECT_DOUBLE_EQ(got(r, c), expect(r, c));
}

TEST(MatrixTest, MultiplyABtMatchesExplicitTranspose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};  // 2x3
  Matrix b{{1.0, 1.0, 0.0}, {0.0, 2.0, 1.0}};  // 2x3
  const Matrix expect = Matrix::multiply(a, b.transposed());
  const Matrix got = Matrix::multiply_a_bt(a, b);
  for (std::size_t r = 0; r < got.rows(); ++r)
    for (std::size_t c = 0; c < got.cols(); ++c)
      EXPECT_DOUBLE_EQ(got(r, c), expect(r, c));
}

TEST(MatrixTest, RowViewReadsAndWritesInPlace) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix& cm = m;
  std::span<const double> view = cm.row_view(1);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[2], 6.0);
  m.row_view(0)[1] = 20.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 20.0);
  m.set_row(1, std::span<const double>(std::vector<double>{7.0, 8.0, 9.0}));
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(MatrixTest, ResizeZeroFillsAndReusesCapacity) {
  Matrix m(8, 8, 3.0);
  const double* before = m.data().data();
  m.resize(4, 4);  // shrink: must reuse the allocation
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.data().data(), before);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MatrixTest, MultiplyIntoMatchesMultiplyBitExact) {
  // Shapes straddling the 64-wide GEMM tile so the blocked kernel's tile
  // boundaries (and remainders) are all exercised.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 4},    {64, 64, 64},
                                   {65, 64, 3}, {70, 130, 9}, {128, 65, 66}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]);
    Matrix b(s[1], s[2]);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = static_cast<double>((i * 37 % 23)) / 7.0 - 1.5;
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b.data()[i] = static_cast<double>((i * 61 % 19)) / 5.0 - 2.0;
    }
    // Reference: the unblocked i-k-j accumulation.
    Matrix expect(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
          expect(i, j) += a(i, k) * b(k, j);
        }
      }
    }
    Matrix c;
    Matrix::multiply_into(a, b, c);
    ASSERT_EQ(c.rows(), expect.rows());
    ASSERT_EQ(c.cols(), expect.cols());
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.data()[i], expect.data()[i]) << "shape " << s[0] << "x" << s[1] << "x" << s[2];
    }
    const Matrix via_multiply = Matrix::multiply(a, b);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.data()[i], via_multiply.data()[i]);
    }
  }
}

TEST(MatrixTest, MultiplyIntoReusesOutputAllocation) {
  Matrix a(16, 16, 1.0);
  Matrix b(16, 16, 2.0);
  Matrix c(32, 32);  // larger than the product: capacity must be reused
  const double* before = c.data().data();
  Matrix::multiply_into(a, b, c);
  EXPECT_EQ(c.rows(), 16u);
  EXPECT_EQ(c.cols(), 16u);
  EXPECT_EQ(c.data().data(), before);
  EXPECT_DOUBLE_EQ(c(3, 7), 32.0);
}

TEST(MatrixTest, FillOverwrites) {
  Matrix m(2, 2, 3.0);
  m.fill(0.0);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

/// Associativity-style property over random shapes.
class MatrixPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixPropertyTest, DistributiveOverAddition) {
  const int n = GetParam();
  Matrix a(n, n);
  Matrix b(n, n);
  Matrix c(n, n);
  // Deterministic pseudo-values.
  for (int i = 0; i < n * n; ++i) {
    a.data()[static_cast<std::size_t>(i)] = (i * 37 % 11) - 5.0;
    b.data()[static_cast<std::size_t>(i)] = (i * 17 % 7) - 3.0;
    c.data()[static_cast<std::size_t>(i)] = (i * 29 % 13) - 6.0;
  }
  const Matrix lhs = Matrix::multiply(a, b + c);
  const Matrix rhs = Matrix::multiply(a, b) + Matrix::multiply(a, c);
  for (std::size_t i = 0; i < lhs.data().size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixPropertyTest, ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace verihvac
