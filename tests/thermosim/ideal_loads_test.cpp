// ideal_load_output: the EnergyPlus-style thermostat the network uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "thermosim/hvac.hpp"

namespace verihvac::sim {
namespace {

HvacParams unit() {
  HvacParams p;
  p.heating_capacity_w = 4000.0;
  p.cooling_capacity_w = 3500.0;
  p.heating_efficiency = 0.8;
  p.cooling_cop = 3.0;
  p.fan_power_w = 100.0;
  return p;
}

constexpr double kCap = 1.0e6;  // air-node capacitance [J/K]
constexpr double kDt = 60.0;    // substep [s]

TEST(IdealLoadsTest, OffInsideDeadband) {
  const auto out = ideal_load_output(unit(), 21.0, {20.0, 24.0}, 500.0, kCap, kDt);
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, 0.0);
  EXPECT_DOUBLE_EQ(out.consumed_power_w, 0.0);
}

TEST(IdealLoadsTest, DeliversExactlyTheSetpointHoldingPower) {
  // 0.5 K below setpoint with a -800 W load: power to land on the
  // setpoint = C*dT/dt - load = 1e6*0.5/60 + 800 ~ 9133 W -> capped.
  const double needed = kCap * 0.5 / kDt + 800.0;
  ASSERT_GT(needed, unit().heating_capacity_w);
  const auto capped = ideal_load_output(unit(), 19.5, {20.0, 24.0}, -800.0, kCap, kDt);
  EXPECT_DOUBLE_EQ(capped.heat_to_zone_w, unit().heating_capacity_w);

  // A tiny 0.01 K deficit is NOT capped: exact power delivered.
  const double small_needed = kCap * 0.01 / kDt + 800.0;
  ASSERT_LT(small_needed, unit().heating_capacity_w);
  const auto exact = ideal_load_output(unit(), 19.99, {20.0, 24.0}, -800.0, kCap, kDt);
  EXPECT_NEAR(exact.heat_to_zone_w, small_needed, 1e-9);
}

TEST(IdealLoadsTest, NoHeatingWhenGainsAlreadyRecover) {
  // Below setpoint but a large positive load will overshoot it anyway.
  const auto out = ideal_load_output(unit(), 19.9, {20.0, 24.0}, 5000.0, kCap, kDt);
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, 0.0);
}

TEST(IdealLoadsTest, CoolsAboveCoolingSetpoint) {
  // 0.02 K above with +1 kW of gains: must remove C*0.02/60 + 1000 W.
  const double needed = kCap * 0.02 / kDt + 1000.0;
  const auto out = ideal_load_output(unit(), 24.02, {20.0, 24.0}, 1000.0, kCap, kDt);
  EXPECT_NEAR(out.heat_to_zone_w, -needed, 1e-9);
  EXPECT_GT(out.consumed_power_w, 0.0);
}

TEST(IdealLoadsTest, CoolingCappedAtCapacity) {
  const auto out = ideal_load_output(unit(), 30.0, {20.0, 24.0}, 4000.0, kCap, kDt);
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, -unit().cooling_capacity_w);
}

TEST(IdealLoadsTest, NoCoolingWhenLossesAlreadyCool) {
  // Above setpoint but the envelope is dumping heat fast enough.
  const auto out = ideal_load_output(unit(), 24.1, {20.0, 24.0}, -8000.0, kCap, kDt);
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, 0.0);
}

TEST(IdealLoadsTest, CrossedSetpointsResolveTowardHeating) {
  // heat 25 / cool 21 is contradictory; the unit honours heating.
  const auto out = ideal_load_output(unit(), 23.0, {25.0, 21.0}, 0.0, kCap, kDt);
  EXPECT_GT(out.heat_to_zone_w, 0.0);
}

TEST(IdealLoadsTest, ConsumedPowerAccountsEfficiencyAndFan) {
  // Uncapped heating: consumed = heat/efficiency + fan * fraction.
  const auto out = ideal_load_output(unit(), 19.99, {20.0, 24.0}, 0.0, kCap, kDt);
  const double expected = out.heat_to_zone_w / 0.8 +
                          100.0 * (out.heat_to_zone_w / unit().heating_capacity_w);
  EXPECT_NEAR(out.consumed_power_w, expected, 1e-9);
}

TEST(IdealLoadsTest, ConsumedPowerUsesCopForCooling) {
  const auto out = ideal_load_output(unit(), 30.0, {20.0, 24.0}, 4000.0, kCap, kDt);
  const double cooling = -out.heat_to_zone_w;
  EXPECT_NEAR(out.consumed_power_w, cooling / 3.0 + 100.0, 1e-9);
}

class IdealLoadsHoldTest : public ::testing::TestWithParam<double> {};

TEST_P(IdealLoadsHoldTest, SteadyStateHasNoDroop) {
  // Property: for any constant load within capacity, the thermostat + an
  // explicit air-node update settle into a limit cycle that *touches* the
  // active setpoint and never drifts more than one substep of load beyond
  // it. (The unit switches off exactly at the setpoint, so the load moves
  // the node by load*dt/C before the next correction — a two-substep
  // cycle, not a fixed point.) This is the no-droop property: a
  // proportional thermostat instead settles at a load-dependent *offset*
  // and never reaches the setpoint at all.
  const double load = GetParam();
  const HvacParams p = unit();
  const SetpointPair sp{20.0, 24.0};
  double t = load > 0.0 ? 26.0 : 17.0;  // start outside the deadband
  double cycle_min = std::numeric_limits<double>::infinity();
  double cycle_max = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < 600; ++i) {
    const auto out = ideal_load_output(p, t, sp, load, kCap, kDt);
    t += (load + out.heat_to_zone_w) * kDt / kCap;
    if (i >= 580) {  // steady state; observe >= one full cycle
      cycle_min = std::min(cycle_min, t);
      cycle_max = std::max(cycle_max, t);
    }
  }
  const double target = load > 0.0 ? sp.cooling_c : sp.heating_c;
  const double drift = std::abs(load) * kDt / kCap;  // one substep of load
  if (load > 0.0) {
    EXPECT_NEAR(cycle_min, target, 1e-9);      // touches the setpoint
    EXPECT_LE(cycle_max, target + drift + 1e-9);
  } else {
    EXPECT_NEAR(cycle_max, target, 1e-9);
    EXPECT_GE(cycle_min, target - drift - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, IdealLoadsHoldTest,
                         ::testing::Values(-3000.0, -1200.0, -200.0, 300.0, 1500.0,
                                           3000.0));

}  // namespace
}  // namespace verihvac::sim
