#include "thermosim/thermal_network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "thermosim/building_presets.hpp"

namespace verihvac::sim {
namespace {

BoundaryConditions cold_night(std::size_t zones) {
  BoundaryConditions bc;
  bc.outdoor_temp_c = -5.0;
  bc.wind_mps = 3.0;
  bc.solar_wm2 = 0.0;
  bc.occupants.assign(zones, 0.0);
  return bc;
}

std::vector<SetpointPair> all_setpoints(std::size_t zones, double heat, double cool) {
  return std::vector<SetpointPair>(zones, SetpointPair{heat, cool});
}

TEST(ThermalNetworkTest, ResetSetsAllNodes) {
  ThermalNetwork net(five_zone_building());
  net.reset(22.5);
  for (std::size_t z = 0; z < net.zone_count(); ++z) {
    EXPECT_DOUBLE_EQ(net.air_temp(z), 22.5);
    EXPECT_DOUBLE_EQ(net.mass_temp(z), 22.5);
  }
}

TEST(ThermalNetworkTest, UnconditionedBuildingCoolsTowardOutdoor) {
  const Building b = five_zone_building();
  ThermalNetwork net(b);
  net.reset(21.0);
  const auto bc = cold_night(b.zone_count());
  // HVAC off: setback far below/above.
  const auto setpoints = all_setpoints(b.zone_count(), -50.0, 80.0);
  for (int hour = 0; hour < 24; ++hour) {
    net.advance(setpoints, bc, 3600.0);
  }
  for (std::size_t z = 0; z < b.zone_count(); ++z) {
    EXPECT_LT(net.air_temp(z), 21.0);
    EXPECT_GT(net.air_temp(z), bc.outdoor_temp_c);  // never below ambient
  }
}

TEST(ThermalNetworkTest, EquilibriumApproachesOutdoorWithoutGains) {
  const Building b = single_zone_building();
  ThermalNetwork net(b);
  net.reset(20.0);
  BoundaryConditions bc = cold_night(1);
  bc.outdoor_temp_c = 5.0;
  bc.wind_mps = 0.0;
  const auto off = all_setpoints(1, -50.0, 80.0);
  for (int i = 0; i < 24 * 14; ++i) net.advance(off, bc, 3600.0);  // two weeks
  EXPECT_NEAR(net.air_temp(0), 5.0, 0.3);
  EXPECT_NEAR(net.mass_temp(0), 5.0, 0.3);
}

TEST(ThermalNetworkTest, HeatingRaisesTemperatureAndConsumesEnergy) {
  const Building b = five_zone_building();
  ThermalNetwork net(b);
  net.reset(15.0);
  const auto bc = cold_night(b.zone_count());
  const auto setpoints = all_setpoints(b.zone_count(), 21.0, 25.0);
  EnergyAccount total;
  for (int i = 0; i < 8; ++i) {
    total += net.advance(setpoints, bc, kControlStepSeconds);
  }
  for (std::size_t z = 0; z < b.zone_count(); ++z) {
    EXPECT_GT(net.air_temp(z), 15.0);
  }
  EXPECT_GT(total.consumed_joules, 0.0);
  EXPECT_GT(total.heating_joules, 0.0);
  EXPECT_DOUBLE_EQ(total.cooling_joules, 0.0);
}

TEST(ThermalNetworkTest, ThermostatHoldsSetpointInSteadyState) {
  const Building b = five_zone_building();
  ThermalNetwork net(b);
  net.reset(21.0);
  const auto bc = cold_night(b.zone_count());
  const auto setpoints = all_setpoints(b.zone_count(), 21.0, 25.0);
  for (int i = 0; i < 24 * 4; ++i) net.advance(setpoints, bc, 3600.0);
  for (std::size_t z = 0; z < b.zone_count(); ++z) {
    // Proportional control settles just below the setpoint (droop), well
    // within the throttling band.
    EXPECT_NEAR(net.air_temp(z), 21.0, 1.0);
  }
}

TEST(ThermalNetworkTest, CoolingActivatesWhenHot) {
  const Building b = single_zone_building();
  ThermalNetwork net(b);
  net.reset(30.0);
  BoundaryConditions bc = cold_night(1);
  bc.outdoor_temp_c = 35.0;
  const auto setpoints = all_setpoints(1, 15.0, 24.0);
  const EnergyAccount account = net.advance(setpoints, bc, 3600.0);
  EXPECT_GT(account.cooling_joules, 0.0);
  EXPECT_LT(net.air_temp(0), 30.0);
}

TEST(ThermalNetworkTest, SolarGainWarmsGlazedZone) {
  const Building b = five_zone_building();
  ThermalNetwork a(b);
  ThermalNetwork s(b);
  a.reset(20.0);
  s.reset(20.0);
  BoundaryConditions dark = cold_night(b.zone_count());
  BoundaryConditions sunny = dark;
  sunny.solar_wm2 = 500.0;
  const auto off = all_setpoints(b.zone_count(), -50.0, 80.0);
  for (int i = 0; i < 8; ++i) {
    a.advance(off, dark, kControlStepSeconds);
    s.advance(off, sunny, kControlStepSeconds);
  }
  EXPECT_GT(s.air_temp(b.controlled_zone()), a.air_temp(b.controlled_zone()) + 0.2);
}

TEST(ThermalNetworkTest, OccupantsWarmTheZone) {
  const Building b = single_zone_building();
  ThermalNetwork empty(b);
  ThermalNetwork busy(b);
  empty.reset(20.0);
  busy.reset(20.0);
  BoundaryConditions bc_empty = cold_night(1);
  BoundaryConditions bc_busy = bc_empty;
  bc_busy.occupants = {15.0};
  const auto off = all_setpoints(1, -50.0, 80.0);
  for (int i = 0; i < 8; ++i) {
    empty.advance(off, bc_empty, kControlStepSeconds);
    busy.advance(off, bc_busy, kControlStepSeconds);
  }
  EXPECT_GT(busy.air_temp(0), empty.air_temp(0) + 0.3);
}

TEST(ThermalNetworkTest, WindIncreasesHeatLoss) {
  const Building b = single_zone_building();
  ThermalNetwork calm(b);
  ThermalNetwork windy(b);
  calm.reset(21.0);
  windy.reset(21.0);
  BoundaryConditions bc_calm = cold_night(1);
  bc_calm.wind_mps = 0.0;
  BoundaryConditions bc_windy = bc_calm;
  bc_windy.wind_mps = 12.0;
  const auto off = all_setpoints(1, -50.0, 80.0);
  for (int i = 0; i < 8; ++i) {
    calm.advance(off, bc_calm, kControlStepSeconds);
    windy.advance(off, bc_windy, kControlStepSeconds);
  }
  EXPECT_LT(windy.air_temp(0), calm.air_temp(0));
}

TEST(ThermalNetworkTest, InterzoneCouplingPullsNeighborsTogether) {
  const Building b = five_zone_building();
  ThermalNetwork net(b);
  std::vector<double> air(5, 18.0);
  std::vector<double> mass(5, 18.0);
  air[b.controlled_zone()] = 26.0;
  net.reset(air, mass);
  const auto bc = cold_night(5);
  const auto off = all_setpoints(5, -50.0, 80.0);
  const double spread_before = 26.0 - 18.0;
  for (int i = 0; i < 8; ++i) net.advance(off, bc, kControlStepSeconds);
  double min_t = 1e9;
  double max_t = -1e9;
  for (std::size_t z = 0; z < 5; ++z) {
    min_t = std::min(min_t, net.air_temp(z));
    max_t = std::max(max_t, net.air_temp(z));
  }
  EXPECT_LT(max_t - min_t, spread_before);
}

TEST(ThermalNetworkTest, EnergyAccountingIsConsistent) {
  const Building b = five_zone_building();
  ThermalNetwork net(b);
  net.reset(15.0);
  const auto bc = cold_night(5);
  const auto setpoints = all_setpoints(5, 21.0, 25.0);
  const EnergyAccount account = net.advance(setpoints, bc, kControlStepSeconds);
  // Controlled-zone share is part of (and no more than) the building total.
  EXPECT_GT(account.controlled_zone_consumed_joules, 0.0);
  EXPECT_LE(account.controlled_zone_consumed_joules, account.consumed_joules);
  // Fuel in >= heat delivered (efficiency < 1).
  EXPECT_GE(account.consumed_joules, account.heating_joules);
}

TEST(ThermalNetworkTest, SubstepInvariance) {
  // 60 s and 30 s substeps must land on nearly identical states (implicit
  // Euler convergence).
  const Building b = five_zone_building();
  ThermalNetwork coarse(b, 60.0);
  ThermalNetwork fine(b, 30.0);
  coarse.reset(18.0);
  fine.reset(18.0);
  const auto bc = cold_night(5);
  const auto setpoints = all_setpoints(5, 21.0, 25.0);
  for (int i = 0; i < 16; ++i) {
    coarse.advance(setpoints, bc, kControlStepSeconds);
    fine.advance(setpoints, bc, kControlStepSeconds);
  }
  for (std::size_t z = 0; z < 5; ++z) {
    EXPECT_NEAR(coarse.air_temp(z), fine.air_temp(z), 0.15);
  }
}

TEST(ThermalNetworkTest, RejectsBadArguments) {
  ThermalNetwork net(five_zone_building());
  EXPECT_THROW(net.advance(all_setpoints(2, 20.0, 24.0), cold_night(5), 900.0),
               std::invalid_argument);
  BoundaryConditions bad_bc = cold_night(3);
  EXPECT_THROW(net.advance(all_setpoints(5, 20.0, 24.0), bad_bc, 900.0),
               std::invalid_argument);
  EXPECT_THROW(net.reset({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ThermalNetwork(five_zone_building(), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace verihvac::sim
