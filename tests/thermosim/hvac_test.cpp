#include "thermosim/hvac.hpp"

#include <gtest/gtest.h>

namespace verihvac::sim {
namespace {

HvacParams params() {
  HvacParams p;
  p.heating_capacity_w = 4000.0;
  p.cooling_capacity_w = 3000.0;
  p.throttling_range_k = 1.0;
  p.heating_efficiency = 0.8;
  p.cooling_cop = 3.0;
  p.fan_power_w = 100.0;
  return p;
}

TEST(HvacTest, IdleInsideDeadband) {
  const HvacOutput out = hvac_output(params(), 21.0, SetpointPair{20.0, 24.0});
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, 0.0);
  EXPECT_DOUBLE_EQ(out.consumed_power_w, 0.0);
}

TEST(HvacTest, HeatsBelowHeatingSetpoint) {
  const HvacOutput out = hvac_output(params(), 19.0, SetpointPair{20.0, 24.0});
  EXPECT_GT(out.heat_to_zone_w, 0.0);
  EXPECT_GT(out.consumed_power_w, out.heat_to_zone_w);  // efficiency < 1 + fan
}

TEST(HvacTest, FullHeatingBeyondThrottlingRange) {
  const HvacOutput out = hvac_output(params(), 15.0, SetpointPair{20.0, 24.0});
  EXPECT_DOUBLE_EQ(out.heat_to_zone_w, 4000.0);
  EXPECT_DOUBLE_EQ(out.consumed_power_w, 4000.0 / 0.8 + 100.0);
}

TEST(HvacTest, ProportionalHeatingInsideRange) {
  // 0.5 K below setpoint with a 1.0 K band -> half capacity.
  const HvacOutput out = hvac_output(params(), 19.5, SetpointPair{20.0, 24.0});
  EXPECT_NEAR(out.heat_to_zone_w, 2000.0, 1e-9);
  EXPECT_NEAR(out.consumed_power_w, 2000.0 / 0.8 + 50.0, 1e-9);
}

TEST(HvacTest, CoolsAboveCoolingSetpoint) {
  const HvacOutput out = hvac_output(params(), 26.0, SetpointPair{20.0, 24.0});
  EXPECT_LT(out.heat_to_zone_w, 0.0);
  // COP 3: electric power is a third of the heat removed, plus fan.
  EXPECT_NEAR(out.consumed_power_w, 3000.0 / 3.0 + 100.0, 1e-9);
}

TEST(HvacTest, ProportionalCooling) {
  const HvacOutput out = hvac_output(params(), 24.5, SetpointPair{20.0, 24.0});
  EXPECT_NEAR(out.heat_to_zone_w, -1500.0, 1e-9);
}

TEST(HvacTest, CrossedSetpointsResolveTowardHeating) {
  // heat=25 > cool=21: the equipment must not fight itself. Heating wins.
  const HvacOutput out = hvac_output(params(), 22.0, SetpointPair{25.0, 21.0});
  EXPECT_GT(out.heat_to_zone_w, 0.0);
}

TEST(HvacTest, EnergyNeverNegative) {
  for (double temp = 10.0; temp <= 35.0; temp += 0.5) {
    const HvacOutput out = hvac_output(params(), temp, SetpointPair{20.0, 24.0});
    EXPECT_GE(out.consumed_power_w, 0.0) << "at " << temp;
  }
}

TEST(HvacTest, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(validate(HvacParams{}));
}

TEST(HvacTest, ValidateRejectsNonphysical) {
  HvacParams p = params();
  p.heating_efficiency = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = params();
  p.heating_efficiency = 1.5;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = params();
  p.cooling_cop = -1.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = params();
  p.throttling_range_k = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

/// Monotonicity sweep: colder zone -> more heating power, never less.
class HvacMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(HvacMonotonicityTest, HeatingMonotoneInDeficit) {
  const double heat_sp = GetParam();
  double prev = -1.0;
  for (double temp = heat_sp + 1.0; temp >= heat_sp - 3.0; temp -= 0.25) {
    const HvacOutput out = hvac_output(params(), temp, SetpointPair{heat_sp, 30.0});
    EXPECT_GE(out.heat_to_zone_w, prev);
    prev = out.heat_to_zone_w;
  }
}

INSTANTIATE_TEST_SUITE_P(Setpoints, HvacMonotonicityTest,
                         ::testing::Values(15.0, 18.0, 20.0, 22.0, 23.0));

}  // namespace
}  // namespace verihvac::sim
