#include "thermosim/simulation.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "thermosim/building_presets.hpp"

namespace verihvac::sim {
namespace {

weather::WeatherRecord winter_record() {
  weather::WeatherRecord r;
  r.outdoor_temp_c = -2.0;
  r.humidity_pct = 70.0;
  r.wind_mps = 4.0;
  r.solar_wm2 = 0.0;
  return r;
}

TEST(SimulationTest, StepReturnsConsistentState) {
  BuildingSimulator sim(five_zone_building());
  sim.reset(20.0);
  const std::vector<SetpointPair> sp(5, SetpointPair{21.0, 25.0});
  const std::vector<double> occ(5, 0.0);
  const StepResult result = sim.step(sp, winter_record(), occ);
  ASSERT_EQ(result.zone_temps_c.size(), 5u);
  EXPECT_DOUBLE_EQ(result.controlled_zone_temp_c,
                   result.zone_temps_c[sim.controlled_zone()]);
  EXPECT_DOUBLE_EQ(result.controlled_zone_temp_c, sim.controlled_zone_temp());
  EXPECT_GE(result.consumed_kwh, 0.0);
  EXPECT_LE(result.controlled_zone_kwh, result.consumed_kwh);
}

TEST(SimulationTest, DeterministicGivenSameInputs) {
  BuildingSimulator a(five_zone_building());
  BuildingSimulator b(five_zone_building());
  a.reset(19.0);
  b.reset(19.0);
  const std::vector<SetpointPair> sp(5, SetpointPair{20.0, 24.0});
  const std::vector<double> occ(5, 3.0);
  for (int i = 0; i < 10; ++i) {
    const StepResult ra = a.step(sp, winter_record(), occ);
    const StepResult rb = b.step(sp, winter_record(), occ);
    EXPECT_DOUBLE_EQ(ra.controlled_zone_temp_c, rb.controlled_zone_temp_c);
    EXPECT_DOUBLE_EQ(ra.consumed_kwh, rb.consumed_kwh);
  }
}

TEST(SimulationTest, SetbackUsesLessEnergyThanComfort) {
  BuildingSimulator comfort(five_zone_building());
  BuildingSimulator setback(five_zone_building());
  comfort.reset(20.0);
  setback.reset(20.0);
  const std::vector<SetpointPair> sp_comfort(5, SetpointPair{21.0, 23.5});
  const std::vector<SetpointPair> sp_setback(5, SetpointPair{15.0, 30.0});
  const std::vector<double> occ(5, 0.0);
  double kwh_comfort = 0.0;
  double kwh_setback = 0.0;
  for (int i = 0; i < kStepsPerDay; ++i) {
    kwh_comfort += comfort.step(sp_comfort, winter_record(), occ).consumed_kwh;
    kwh_setback += setback.step(sp_setback, winter_record(), occ).consumed_kwh;
  }
  EXPECT_LT(kwh_setback, kwh_comfort * 0.7);
}

TEST(SimulationTest, JanuaryHeatingMagnitudeIsPlausible) {
  // The paper's Fig. 4 reports roughly 1100-1300 kWh/month for Pittsburgh
  // with comfort setpoints; our plant should land in that decade (a loose
  // 2x band — the substitution contract is magnitude + ordering).
  BuildingSimulator sim(five_zone_building());
  sim.reset(21.0);
  const std::vector<SetpointPair> sp(5, SetpointPair{21.0, 23.5});
  const std::vector<double> occ(5, 2.0);
  double kwh = 0.0;
  for (int i = 0; i < kStepsPerDay; ++i) {
    kwh += sim.step(sp, winter_record(), occ).consumed_kwh;
  }
  const double month = kwh * 31.0;
  EXPECT_GT(month, 500.0);
  EXPECT_LT(month, 3000.0);
}

TEST(SimulationTest, ResetRestoresInitialTemperature) {
  BuildingSimulator sim(five_zone_building());
  sim.reset(20.0);
  const std::vector<SetpointPair> sp(5, SetpointPair{15.0, 30.0});
  const std::vector<double> occ(5, 0.0);
  for (int i = 0; i < 20; ++i) sim.step(sp, winter_record(), occ);
  EXPECT_NE(sim.controlled_zone_temp(), 20.0);
  sim.reset(20.0);
  EXPECT_DOUBLE_EQ(sim.controlled_zone_temp(), 20.0);
}

}  // namespace
}  // namespace verihvac::sim
