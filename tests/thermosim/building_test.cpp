#include "thermosim/building.hpp"

#include <gtest/gtest.h>

#include "thermosim/building_presets.hpp"
#include "thermosim/zone.hpp"

namespace verihvac::sim {
namespace {

ZoneParams test_zone(const std::string& name) {
  ZoneParams z;
  z.name = name;
  return z;
}

TEST(BuildingTest, AddZoneReturnsSequentialIndices) {
  Building b;
  EXPECT_EQ(b.add_zone(test_zone("a"), HvacParams{}), 0u);
  EXPECT_EQ(b.add_zone(test_zone("b"), HvacParams{}), 1u);
  EXPECT_EQ(b.zone_count(), 2u);
}

TEST(BuildingTest, ConnectIsSymmetric) {
  Building b;
  b.add_zone(test_zone("a"), HvacParams{});
  b.add_zone(test_zone("b"), HvacParams{});
  b.connect(0, 1, 42.0);
  EXPECT_DOUBLE_EQ(b.interzone_ua(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(b.interzone_ua(1, 0), 42.0);
  EXPECT_DOUBLE_EQ(b.interzone_ua(0, 0), 0.0);
}

TEST(BuildingTest, ConnectRejectsBadArgs) {
  Building b;
  b.add_zone(test_zone("a"), HvacParams{});
  b.add_zone(test_zone("b"), HvacParams{});
  EXPECT_THROW(b.connect(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(b.connect(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(b.connect(0, 1, -1.0), std::invalid_argument);
}

TEST(BuildingTest, CouplingsSurviveZoneAddition) {
  Building b;
  b.add_zone(test_zone("a"), HvacParams{});
  b.add_zone(test_zone("b"), HvacParams{});
  b.connect(0, 1, 10.0);
  b.add_zone(test_zone("c"), HvacParams{});
  EXPECT_DOUBLE_EQ(b.interzone_ua(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(b.interzone_ua(0, 2), 0.0);
}

TEST(BuildingTest, ControlledZoneValidation) {
  Building b;
  b.add_zone(test_zone("a"), HvacParams{});
  EXPECT_NO_THROW(b.set_controlled_zone(0));
  EXPECT_THROW(b.set_controlled_zone(3), std::invalid_argument);
}

TEST(BuildingTest, EmptyBuildingFailsValidation) {
  Building b;
  EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(BuildingTest, AddZoneRejectsInvalidZone) {
  Building b;
  ZoneParams bad = test_zone("bad");
  bad.air_capacitance = -1.0;
  EXPECT_THROW(b.add_zone(bad, HvacParams{}), std::invalid_argument);
}

TEST(ZoneTest, ValidateChecksEveryField) {
  ZoneParams z = test_zone("z");
  EXPECT_NO_THROW(validate(z));
  z.floor_area_m2 = 0.0;
  EXPECT_THROW(validate(z), std::invalid_argument);
  z = test_zone("z");
  z.solar_to_mass_fraction = 1.5;
  EXPECT_THROW(validate(z), std::invalid_argument);
  z = test_zone("z");
  z.ua_mass = 0.0;
  EXPECT_THROW(validate(z), std::invalid_argument);
}

TEST(PresetTest, FiveZoneBuildingMatchesPaperPlant) {
  const Building b = five_zone_building();
  EXPECT_EQ(b.zone_count(), 5u);
  // 463 m^2 total floor area (the paper's building).
  EXPECT_NEAR(b.total_floor_area(), 463.0, 1.0);
  EXPECT_NO_THROW(b.validate());
  // Controlled zone is a perimeter zone with glazing.
  EXPECT_GT(b.zone(b.controlled_zone()).solar_aperture_m2, 0.0);
}

TEST(PresetTest, CoreZoneHasNoGlazingAndSmallEnvelope) {
  const Building b = five_zone_building();
  // Core zone = largest floor plate.
  std::size_t core = 0;
  for (std::size_t i = 1; i < b.zone_count(); ++i) {
    if (b.zone(i).floor_area_m2 > b.zone(core).floor_area_m2) core = i;
  }
  EXPECT_DOUBLE_EQ(b.zone(core).solar_aperture_m2, 0.0);
  EXPECT_LT(b.zone(core).ua_outdoor, b.zone(b.controlled_zone()).ua_outdoor);
}

TEST(PresetTest, EveryPerimeterZoneTouchesCore) {
  const Building b = five_zone_building();
  std::size_t core = 0;
  for (std::size_t i = 1; i < b.zone_count(); ++i) {
    if (b.zone(i).floor_area_m2 > b.zone(core).floor_area_m2) core = i;
  }
  for (std::size_t i = 0; i < b.zone_count(); ++i) {
    if (i == core) continue;
    EXPECT_GT(b.interzone_ua(i, core), 0.0) << "zone " << i;
  }
}

TEST(PresetTest, SingleZoneBuildingIsValid) {
  const Building b = single_zone_building();
  EXPECT_EQ(b.zone_count(), 1u);
  EXPECT_NO_THROW(b.validate());
}

TEST(BuildingPresetTest, HvacScaleMultipliesEveryUnit) {
  const sim::Building base = sim::five_zone_building();
  const sim::Building scaled = sim::five_zone_building(2.0);
  ASSERT_EQ(scaled.zone_count(), base.zone_count());
  for (std::size_t z = 0; z < base.zone_count(); ++z) {
    EXPECT_DOUBLE_EQ(scaled.hvac(z).heating_capacity_w, 2.0 * base.hvac(z).heating_capacity_w);
    EXPECT_DOUBLE_EQ(scaled.hvac(z).cooling_capacity_w, 2.0 * base.hvac(z).cooling_capacity_w);
    EXPECT_DOUBLE_EQ(scaled.hvac(z).fan_power_w, 2.0 * base.hvac(z).fan_power_w);
    // Efficiencies are intensive quantities; scaling must not touch them.
    EXPECT_DOUBLE_EQ(scaled.hvac(z).cooling_cop, base.hvac(z).cooling_cop);
    EXPECT_DOUBLE_EQ(scaled.hvac(z).heating_efficiency, base.hvac(z).heating_efficiency);
  }
}

TEST(BuildingPresetTest, HvacScaleRejectsNonPositive) {
  EXPECT_THROW(sim::five_zone_building(0.0), std::invalid_argument);
  EXPECT_THROW(sim::five_zone_building(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace verihvac::sim
