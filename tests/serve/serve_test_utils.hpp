// Shared toy artifacts for the serving tests: a quickly-trained dynamics
// model with the paper's input shape, a DT policy fitted on synthetic
// decision data, and canonical observations/forecasts. Serving tests
// exercise the scheduler/registry/session machinery, not model quality,
// so the assets only need realistic shapes and deterministic seeds.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/task_pool.hpp"
#include "core/dt_policy.hpp"
#include "dynamics/dynamics_model.hpp"

namespace verihvac::serve::testing {

inline double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  double dt = 0.08 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 1.2);
  if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
  return t + dt;
}

inline std::shared_ptr<const dyn::DynamicsModel> toy_model(std::uint64_t seed = 1) {
  Rng rng(seed);
  dyn::TransitionDataset data;
  for (int i = 0; i < 500; ++i) {
    dyn::Transition t;
    t.input = {rng.uniform(14.0, 28.0), rng.uniform(-8.0, 12.0), 50.0, 3.0,
               rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
    t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
    t.action.cooling_c = static_cast<double>(
        rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
    t.next_zone_temp = toy_plant(t.input, t.action);
    data.add(t);
  }
  dyn::DynamicsModelConfig config;
  config.trainer.epochs = 5;
  auto model = std::make_shared<dyn::DynamicsModel>(config);
  model->train(data);
  return model;
}

inline std::shared_ptr<const core::DtPolicy> toy_policy(std::uint64_t seed = 3,
                                                        control::ActionSpaceConfig grid = {}) {
  control::ActionSpace actions(grid);
  Rng rng(seed);
  core::DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    core::DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0), rng.uniform(0.0, 600.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return std::make_shared<const core::DtPolicy>(core::DtPolicy::fit(data, actions));
}

inline env::Observation cold_occupied(double zone_temp = 17.5) {
  env::Observation obs;
  obs.zone_temp_c = zone_temp;
  obs.weather.outdoor_temp_c = -5.0;
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = 120.0;
  obs.occupants = 11.0;
  return obs;
}

inline std::vector<env::Disturbance> steady_forecast(const env::Observation& obs,
                                                     std::size_t horizon) {
  env::Disturbance d;
  d.weather = obs.weather;
  d.occupants = obs.occupants;
  return std::vector<env::Disturbance>(horizon, d);
}

inline std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

}  // namespace verihvac::serve::testing
