#include "serve/policy_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/policy_io.hpp"
#include "envlib/feature_schema.hpp"
#include "serve_test_utils.hpp"

namespace verihvac::serve {
namespace {

using testing::toy_policy;

std::shared_ptr<const core::DtPolicy> toy_time_aware_policy(std::uint64_t seed = 7) {
  control::ActionSpace actions{control::ActionSpaceConfig{}};
  Rng rng(seed);
  core::DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    core::DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0,
                 rng.uniform(-1.0, 1.0),  rng.uniform(-1.0, 1.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return std::make_shared<const core::DtPolicy>(
      core::DtPolicy::fit(data, actions, {}, env::time_aware_schema()));
}

TEST(PolicyRegistryTest, InstallThenLookupReturnsSamePolicy) {
  PolicyRegistry registry;
  const auto policy = toy_policy();
  const std::uint64_t version = registry.install("Pittsburgh/baseline", policy);
  EXPECT_GE(version, 1u);

  const PolicySnapshot snapshot = registry.lookup("Pittsburgh/baseline");
  EXPECT_EQ(snapshot.policy.get(), policy.get());
  EXPECT_EQ(snapshot.version, version);
  EXPECT_TRUE(registry.contains("Pittsburgh/baseline"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(PolicyRegistryTest, VersionsAreMonotonicAcrossKeys) {
  PolicyRegistry registry;
  const std::uint64_t v1 = registry.install("a", toy_policy(1));
  const std::uint64_t v2 = registry.install("b", toy_policy(2));
  const std::uint64_t v3 = registry.install("a", toy_policy(3));  // hot swap
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  EXPECT_EQ(registry.lookup("a").version, v3);
  EXPECT_EQ(registry.lookup("b").version, v2);
}

TEST(PolicyRegistryTest, HotSwapKeepsInFlightSnapshotAlive) {
  PolicyRegistry registry;
  const auto old_policy = toy_policy(1);
  registry.install("key", old_policy);
  const PolicySnapshot in_flight = registry.lookup("key");

  registry.install("key", toy_policy(2));
  // The swap must not invalidate the snapshot a serving thread holds.
  EXPECT_EQ(in_flight.policy.get(), old_policy.get());
  ASSERT_NE(in_flight.policy, nullptr);
  EXPECT_GT(in_flight.policy->tree().node_count(), 0u);
  // New lookups see the new bundle.
  EXPECT_NE(registry.lookup("key").policy.get(), old_policy.get());
}

TEST(PolicyRegistryTest, LookupUnknownKeyThrows) {
  PolicyRegistry registry;
  EXPECT_THROW(registry.lookup("missing"), std::out_of_range);
  const PolicySnapshot snapshot = registry.try_lookup("missing");
  EXPECT_EQ(snapshot.policy, nullptr);
  EXPECT_EQ(snapshot.version, 0u);
}

TEST(PolicyRegistryTest, InstallNullPolicyThrows) {
  PolicyRegistry registry;
  EXPECT_THROW(registry.install("key", nullptr), std::invalid_argument);
}

TEST(PolicyRegistryTest, HotSwapRejectsSchemaMismatch) {
  // A hot-swap must not change the observation layout out from under the
  // sessions already serving the key: installing a time-aware bundle over
  // a baseline incumbent is refused, and the incumbent keeps serving.
  PolicyRegistry registry;
  const auto incumbent = toy_policy();
  const std::uint64_t version = registry.install("Pittsburgh/baseline", incumbent);
  EXPECT_THROW(registry.install("Pittsburgh/baseline", toy_time_aware_policy()),
               std::invalid_argument);
  const PolicySnapshot snapshot = registry.lookup("Pittsburgh/baseline");
  EXPECT_EQ(snapshot.policy.get(), incumbent.get());
  EXPECT_EQ(snapshot.version, version);

  // Heterogeneous schemas coexist fine under different keys...
  registry.install("Pittsburgh/time-aware", toy_time_aware_policy());
  EXPECT_EQ(registry.lookup("Pittsburgh/time-aware").policy->schema(),
            env::time_aware_schema());
  EXPECT_EQ(registry.size(), 2u);

  // ...and erasing the key first is the sanctioned way to change schemas.
  EXPECT_TRUE(registry.erase("Pittsburgh/baseline"));
  registry.install("Pittsburgh/baseline", toy_time_aware_policy());
  EXPECT_EQ(registry.lookup("Pittsburgh/baseline").policy->schema(),
            env::time_aware_schema());
}

TEST(PolicyRegistryTest, EraseRemovesKey) {
  PolicyRegistry registry;
  registry.install("key", toy_policy());
  EXPECT_TRUE(registry.erase("key"));
  EXPECT_FALSE(registry.erase("key"));
  EXPECT_FALSE(registry.contains("key"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(PolicyRegistryTest, KeysAreSortedAndComplete) {
  PolicyRegistry registry;
  registry.install("b", toy_policy(1));
  registry.install("a", toy_policy(2));
  registry.install("c", toy_policy(3));
  const std::vector<std::string> keys = registry.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "c");
}

TEST(PolicyRegistryTest, InstallFileLoadsBundle) {
  const auto policy = toy_policy();
  const std::string path = ::testing::TempDir() + "/registry_bundle.policy";
  core::save_policy(*policy, path);

  PolicyRegistry registry;
  registry.install_file("from-disk", path);
  const PolicySnapshot snapshot = registry.lookup("from-disk");
  EXPECT_EQ(snapshot.policy->tree().node_count(), policy->tree().node_count());
  EXPECT_EQ(snapshot.policy->actions().size(), policy->actions().size());
}

TEST(PolicyRegistryTest, ConcurrentLookupsSurviveHotSwaps) {
  PolicyRegistry registry;
  registry.install("key", toy_policy(0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> decided{0};
  std::vector<std::thread> readers;
  const std::vector<double> x = {20.0, -5.0, 50.0, 3.0, 120.0, 11.0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const PolicySnapshot snapshot = registry.lookup("key");
        // Decide through the snapshot: a concurrent swap must never hand
        // out a half-published bundle.
        snapshot.policy->decide_index(x);
        decided.fetch_add(1);
      }
    });
  }
  for (std::uint64_t i = 1; i <= 25; ++i) registry.install("key", toy_policy(i));
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(decided.load(), 0u);
  EXPECT_GE(registry.lookup_count(), decided.load());
}

}  // namespace
}  // namespace verihvac::serve
