#include "serve/session_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve_test_utils.hpp"

namespace verihvac::serve {
namespace {

using testing::cold_occupied;

TEST(SessionManagerTest, OpenCloseContains) {
  SessionManager sessions;
  SessionConfig config;
  config.policy_key = "Pittsburgh/baseline";
  config.seed = 42;
  const SessionId id = sessions.open(config);
  EXPECT_TRUE(sessions.contains(id));
  EXPECT_EQ(sessions.size(), 1u);

  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.id, id);
  EXPECT_EQ(state.config.policy_key, "Pittsburgh/baseline");
  EXPECT_EQ(state.decisions, 0u);

  EXPECT_TRUE(sessions.close(id));
  EXPECT_FALSE(sessions.contains(id));
  EXPECT_FALSE(sessions.close(id));
  EXPECT_EQ(sessions.size(), 0u);
}

TEST(SessionManagerTest, TicketsPinSeedAndAdvanceStreams) {
  SessionManager sessions;
  SessionConfig config;
  config.policy_key = "key";
  config.seed = 404;
  const SessionId id = sessions.open(config);

  // Stream ids are the decision counter at admission: 0, 1, 2, ... — the
  // coordinates Rng::stream replays a decision's draws from.
  for (std::uint64_t d = 0; d < 5; ++d) {
    const DecisionTicket ticket =
        sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied());
    EXPECT_EQ(ticket.session, id);
    EXPECT_EQ(ticket.policy_key, "key");
    EXPECT_EQ(ticket.seed, 404u);
    EXPECT_EQ(ticket.stream, d);
  }
  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.decisions, 5u);
  EXPECT_EQ(state.mbrl_decisions, 5u);
  EXPECT_EQ(state.dt_decisions, 0u);
}

TEST(SessionManagerTest, PerKindCountersSplit) {
  SessionManager sessions;
  const SessionId id = sessions.open({});
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied());
  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.decisions, 3u);
  EXPECT_EQ(state.dt_decisions, 2u);
  EXPECT_EQ(state.mbrl_decisions, 1u);
}

TEST(SessionManagerTest, HistoryIsBoundedMostRecentLast) {
  SessionManager sessions;
  SessionConfig config;
  config.history_limit = 3;
  const SessionId id = sessions.open(config);
  for (int i = 0; i < 5; ++i) {
    sessions.begin_decision(id, RequestKind::kDtPolicy,
                            cold_occupied(/*zone_temp=*/15.0 + i));
  }
  const SessionState state = sessions.snapshot(id);
  ASSERT_EQ(state.history.size(), 3u);
  EXPECT_DOUBLE_EQ(state.history[0].zone_temp_c, 17.0);
  EXPECT_DOUBLE_EQ(state.history[1].zone_temp_c, 18.0);
  EXPECT_DOUBLE_EQ(state.history[2].zone_temp_c, 19.0);
}

TEST(SessionManagerTest, ZeroHistoryLimitKeepsNothing) {
  SessionManager sessions;
  SessionConfig config;
  config.history_limit = 0;
  const SessionId id = sessions.open(config);
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  EXPECT_TRUE(sessions.snapshot(id).history.empty());
}

TEST(SessionManagerTest, UnknownSessionThrows) {
  SessionManager sessions;
  EXPECT_THROW(sessions.begin_decision(999, RequestKind::kDtPolicy, cold_occupied()),
               std::out_of_range);
  EXPECT_THROW(sessions.snapshot(999), std::out_of_range);
}

TEST(SessionManagerTest, EvictIdleClosesOnlyStaleSessions) {
  SessionManager sessions;
  const SessionId active = sessions.open({});
  const SessionId idle = sessions.open({});

  // `idle` decides once, then goes quiet while `active` racks up traffic.
  sessions.begin_decision(idle, RequestKind::kDtPolicy, cold_occupied());
  for (int i = 0; i < 20; ++i) {
    sessions.begin_decision(active, RequestKind::kDtPolicy, cold_occupied());
  }
  EXPECT_EQ(sessions.admission_clock(), 21u);

  EXPECT_EQ(sessions.evict_idle(/*max_idle_decisions=*/50), 0u);
  EXPECT_EQ(sessions.evict_idle(/*max_idle_decisions=*/10), 1u);
  EXPECT_FALSE(sessions.contains(idle));
  EXPECT_TRUE(sessions.contains(active));
  EXPECT_EQ(sessions.size(), 1u);
}

TEST(SessionManagerTest, EvictIdleReportsTheClosedIds) {
  SessionManager sessions;
  const SessionId quiet_a = sessions.open({});
  const SessionId quiet_b = sessions.open({});
  const SessionId busy = sessions.open({});
  sessions.begin_decision(quiet_a, RequestKind::kDtPolicy, cold_occupied());
  sessions.begin_decision(quiet_b, RequestKind::kDtPolicy, cold_occupied());
  for (int i = 0; i < 30; ++i) {
    sessions.begin_decision(busy, RequestKind::kDtPolicy, cold_occupied());
  }

  // The out-param appends (callers batch sweeps into one eviction list
  // for the telemetry store), and the swept ids are exactly the closed
  // ones.
  std::vector<SessionId> evicted = {999};
  EXPECT_EQ(sessions.evict_idle(/*max_idle_decisions=*/10, &evicted), 2u);
  ASSERT_EQ(evicted.size(), 3u);
  EXPECT_EQ(evicted[0], 999u);
  EXPECT_TRUE((evicted[1] == quiet_a && evicted[2] == quiet_b) ||
              (evicted[1] == quiet_b && evicted[2] == quiet_a));
  EXPECT_FALSE(sessions.contains(quiet_a));
  EXPECT_FALSE(sessions.contains(quiet_b));
  EXPECT_TRUE(sessions.contains(busy));
}

TEST(SessionManagerTest, FreshlyOpenedSessionSurvivesEviction) {
  SessionManager sessions;
  const SessionId talker = sessions.open({});
  for (int i = 0; i < 100; ++i) {
    sessions.begin_decision(talker, RequestKind::kDtPolicy, cold_occupied());
  }
  // Opened just now, zero decisions yet: stamped at the current clock, so
  // a sweep must not reap it.
  const SessionId fresh = sessions.open({});
  EXPECT_EQ(sessions.evict_idle(/*max_idle_decisions=*/50), 0u);
  EXPECT_TRUE(sessions.contains(fresh));
}

TEST(SessionManagerTest, EvictionNeverPerturbsSurvivorStreams) {
  // The eviction lock: a surviving session's tickets after a sweep are
  // bit-identical to the same session's tickets without the sweep —
  // eviction can never change which RNG stream a decision replays from.
  SessionManager with_sweep;
  SessionManager without_sweep;
  SessionConfig survivor_config;
  survivor_config.seed = 7777;

  const SessionId survivor_a = with_sweep.open(survivor_config);
  const SessionId survivor_b = without_sweep.open(survivor_config);
  std::vector<SessionId> churn;
  for (int i = 0; i < 8; ++i) churn.push_back(with_sweep.open({}));

  std::vector<DecisionTicket> tickets_a;
  std::vector<DecisionTicket> tickets_b;
  for (int d = 0; d < 6; ++d) {
    tickets_a.push_back(
        with_sweep.begin_decision(survivor_a, RequestKind::kMbrlFallback, cold_occupied()));
    tickets_b.push_back(
        without_sweep.begin_decision(survivor_b, RequestKind::kMbrlFallback, cold_occupied()));
    if (d == 2) {
      // Mid-run sweep reaps the churned sessions (they never decided).
      EXPECT_EQ(with_sweep.evict_idle(/*max_idle_decisions=*/2), churn.size());
    }
  }
  for (std::size_t d = 0; d < tickets_a.size(); ++d) {
    EXPECT_EQ(tickets_a[d].seed, tickets_b[d].seed);
    EXPECT_EQ(tickets_a[d].stream, tickets_b[d].stream);
    EXPECT_EQ(tickets_a[d].stream, d);
  }
}

TEST(SessionManagerTest, ConcurrentOpensYieldUniqueIds) {
  SessionManager sessions(/*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sessions, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SessionConfig config;
        config.seed = static_cast<std::uint64_t>(t * kPerThread + i);
        ids[t].push_back(sessions.open(config));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<SessionId> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sessions.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(SessionManagerTest, ConcurrentDecisionsOnOneSessionCoverEveryStream) {
  SessionManager sessions;
  const SessionId id = sessions.open({});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::vector<std::uint64_t>> streams(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sessions, &streams, id, t] {
      for (int i = 0; i < kPerThread; ++i) {
        streams[t].push_back(
            sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied()).stream);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Stream ids must be a permutation of [0, N): no duplicates, no gaps —
  // two concurrent decisions can never replay the same draws.
  std::set<std::uint64_t> unique;
  for (const auto& batch : streams) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*unique.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

}  // namespace
}  // namespace verihvac::serve
