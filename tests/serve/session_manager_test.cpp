#include "serve/session_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve_test_utils.hpp"

namespace verihvac::serve {
namespace {

using testing::cold_occupied;

TEST(SessionManagerTest, OpenCloseContains) {
  SessionManager sessions;
  SessionConfig config;
  config.policy_key = "Pittsburgh/baseline";
  config.seed = 42;
  const SessionId id = sessions.open(config);
  EXPECT_TRUE(sessions.contains(id));
  EXPECT_EQ(sessions.size(), 1u);

  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.id, id);
  EXPECT_EQ(state.config.policy_key, "Pittsburgh/baseline");
  EXPECT_EQ(state.decisions, 0u);

  EXPECT_TRUE(sessions.close(id));
  EXPECT_FALSE(sessions.contains(id));
  EXPECT_FALSE(sessions.close(id));
  EXPECT_EQ(sessions.size(), 0u);
}

TEST(SessionManagerTest, TicketsPinSeedAndAdvanceStreams) {
  SessionManager sessions;
  SessionConfig config;
  config.policy_key = "key";
  config.seed = 404;
  const SessionId id = sessions.open(config);

  // Stream ids are the decision counter at admission: 0, 1, 2, ... — the
  // coordinates Rng::stream replays a decision's draws from.
  for (std::uint64_t d = 0; d < 5; ++d) {
    const DecisionTicket ticket =
        sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied());
    EXPECT_EQ(ticket.session, id);
    EXPECT_EQ(ticket.policy_key, "key");
    EXPECT_EQ(ticket.seed, 404u);
    EXPECT_EQ(ticket.stream, d);
  }
  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.decisions, 5u);
  EXPECT_EQ(state.mbrl_decisions, 5u);
  EXPECT_EQ(state.dt_decisions, 0u);
}

TEST(SessionManagerTest, PerKindCountersSplit) {
  SessionManager sessions;
  const SessionId id = sessions.open({});
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied());
  const SessionState state = sessions.snapshot(id);
  EXPECT_EQ(state.decisions, 3u);
  EXPECT_EQ(state.dt_decisions, 2u);
  EXPECT_EQ(state.mbrl_decisions, 1u);
}

TEST(SessionManagerTest, HistoryIsBoundedMostRecentLast) {
  SessionManager sessions;
  SessionConfig config;
  config.history_limit = 3;
  const SessionId id = sessions.open(config);
  for (int i = 0; i < 5; ++i) {
    sessions.begin_decision(id, RequestKind::kDtPolicy,
                            cold_occupied(/*zone_temp=*/15.0 + i));
  }
  const SessionState state = sessions.snapshot(id);
  ASSERT_EQ(state.history.size(), 3u);
  EXPECT_DOUBLE_EQ(state.history[0].zone_temp_c, 17.0);
  EXPECT_DOUBLE_EQ(state.history[1].zone_temp_c, 18.0);
  EXPECT_DOUBLE_EQ(state.history[2].zone_temp_c, 19.0);
}

TEST(SessionManagerTest, ZeroHistoryLimitKeepsNothing) {
  SessionManager sessions;
  SessionConfig config;
  config.history_limit = 0;
  const SessionId id = sessions.open(config);
  sessions.begin_decision(id, RequestKind::kDtPolicy, cold_occupied());
  EXPECT_TRUE(sessions.snapshot(id).history.empty());
}

TEST(SessionManagerTest, UnknownSessionThrows) {
  SessionManager sessions;
  EXPECT_THROW(sessions.begin_decision(999, RequestKind::kDtPolicy, cold_occupied()),
               std::out_of_range);
  EXPECT_THROW(sessions.snapshot(999), std::out_of_range);
}

TEST(SessionManagerTest, ConcurrentOpensYieldUniqueIds) {
  SessionManager sessions(/*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sessions, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SessionConfig config;
        config.seed = static_cast<std::uint64_t>(t * kPerThread + i);
        ids[t].push_back(sessions.open(config));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<SessionId> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sessions.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(SessionManagerTest, ConcurrentDecisionsOnOneSessionCoverEveryStream) {
  SessionManager sessions;
  const SessionId id = sessions.open({});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::vector<std::uint64_t>> streams(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sessions, &streams, id, t] {
      for (int i = 0; i < kPerThread; ++i) {
        streams[t].push_back(
            sessions.begin_decision(id, RequestKind::kMbrlFallback, cold_occupied()).stream);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Stream ids must be a permutation of [0, N): no duplicates, no gaps —
  // two concurrent decisions can never replay the same draws.
  std::set<std::uint64_t> unique;
  for (const auto& batch : streams) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*unique.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

}  // namespace
}  // namespace verihvac::serve
