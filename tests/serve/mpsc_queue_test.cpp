// Edge cases of the scheduler's bounded MPSC queue — the shapes the
// telemetry-era serving stack actually exercises: tiny capacities
// (back-pressure immediately), close() racing blocked producers, and the
// drain -> reopen cycle RequestScheduler::stop()/start() relies on.
#include "serve/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace verihvac::serve {
namespace {

TEST(MpscQueueTest, CapacityOneAlternatesPushPop) {
  BoundedMpscQueue<int> queue(1);
  EXPECT_EQ(queue.capacity(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.push(i));
    EXPECT_EQ(queue.size(), 1u);
    int out = -1;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(MpscQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedMpscQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.push(7));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(MpscQueueTest, CapacityOneBlocksSecondProducerUntilPop) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));

  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });

  // Give the producer a chance to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(MpscQueueTest, CloseReleasesProducersBlockedOnFullQueue) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));

  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &rejected, p] {
      if (!queue.push(100 + p)) rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // close() must wake every blocked producer; their items are dropped and
  // push reports false so callers know the item will never be served.
  queue.close();
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(rejected.load(), kProducers);

  // The item enqueued before the close still drains.
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.pop(out));  // closed and empty
}

TEST(MpscQueueTest, PushAfterCloseFailsWithoutBlocking) {
  BoundedMpscQueue<int> queue(4);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  EXPECT_TRUE(queue.closed());
}

TEST(MpscQueueTest, DrainAfterReopenServesAgain) {
  // The scheduler's stop() -> start() cycle: close, drain the stragglers,
  // reopen, and the queue must behave exactly like a fresh one.
  BoundedMpscQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();

  int out = 0;
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_FALSE(queue.push(3));  // still closed

  queue.reopen();
  EXPECT_FALSE(queue.closed());
  EXPECT_TRUE(queue.push(4));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 4);

  // A second full cycle to prove reopen is not single-shot.
  queue.close();
  EXPECT_FALSE(queue.push(5));
  queue.reopen();
  EXPECT_TRUE(queue.push(6));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 6);
}

TEST(MpscQueueTest, PopUntilTimesOutOnEmptyOpenQueue) {
  BoundedMpscQueue<int> queue(2);
  int out = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(queue.pop_until(out, deadline));
}

TEST(MpscQueueTest, CloseWhileConsumerWaitsReleasesIt) {
  BoundedMpscQueue<int> queue(2);
  std::atomic<bool> released{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));  // blocks until close, then drained-false
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  queue.close();
  consumer.join();
  EXPECT_TRUE(released.load());
}

}  // namespace
}  // namespace verihvac::serve
