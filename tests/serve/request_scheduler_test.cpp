#include "serve/request_scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/trace.hpp"
#include "serve_test_utils.hpp"

namespace verihvac::serve {
namespace {

using testing::cold_occupied;
using testing::pool_with_threads;
using testing::steady_forecast;
using testing::toy_model;
using testing::toy_policy;

control::RandomShootingConfig serving_rs() {
  control::RandomShootingConfig config;
  config.samples = 32;
  config.horizon = 5;
  return config;
}

/// One logical request in a fixed fleet scenario: session slot + fresh
/// observation. Sessions are re-opened per scheduler instance (ids differ),
/// so tests describe requests by slot.
struct ScenarioRequest {
  std::size_t session_slot = 0;
  double zone_temp = 17.5;
};

/// A mixed-fleet scenario: several sessions, several decisions each, every
/// request with its own observation.
std::vector<ScenarioRequest> mixed_scenario() {
  std::vector<ScenarioRequest> scenario;
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t slot = 0; slot < 6; ++slot) {
      scenario.push_back({slot, 15.0 + static_cast<double>(slot) + 0.5 * round});
    }
  }
  return scenario;
}

std::uint64_t slot_seed(std::size_t slot) { return 1000 + 17 * slot; }

/// The per-session scalar reference: RandomShooting::optimize fed the same
/// counter-based stream the scheduler admits the request under. This is
/// deliberately independent code (the optimizer's own serial path), so the
/// test locks scheduler decisions to the library's ground truth.
std::vector<std::size_t> reference_decisions(const std::vector<ScenarioRequest>& scenario,
                                             const dyn::DynamicsModel& model,
                                             const control::RandomShootingConfig& rs_config) {
  const control::RandomShooting rs(rs_config, control::ActionSpace{}, env::RewardConfig{});
  std::map<std::size_t, std::uint64_t> next_stream;
  std::vector<std::size_t> expected;
  for (const ScenarioRequest& item : scenario) {
    const env::Observation obs = cold_occupied(item.zone_temp);
    Rng rng = Rng::stream(slot_seed(item.session_slot), next_stream[item.session_slot]++);
    expected.push_back(rs.optimize(model, obs, steady_forecast(obs, rs_config.horizon), rng));
  }
  return expected;
}

/// Serving stack around shared toy assets; fresh sessions per instance.
struct Stack {
  std::shared_ptr<PolicyRegistry> registry = std::make_shared<PolicyRegistry>();
  std::shared_ptr<SessionManager> sessions = std::make_shared<SessionManager>();
  std::unique_ptr<RequestScheduler> scheduler;
  std::vector<SessionId> slots;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs_config, std::size_t threads,
        SchedulerConfig config = {}, std::size_t slot_count = 6) {
    registry->install("toy", policy);
    scheduler = std::make_unique<RequestScheduler>(config, registry, sessions, rs_config,
                                                   control::ActionSpace{}, env::RewardConfig{},
                                                   pool_with_threads(threads));
    scheduler->install_model("toy", model);
    for (std::size_t slot = 0; slot < slot_count; ++slot) {
      SessionConfig session;
      session.policy_key = "toy";
      session.seed = slot_seed(slot);
      slots.push_back(sessions->open(session));
    }
  }

  ControlRequest request(const ScenarioRequest& item, RequestKind kind,
                         std::size_t horizon) const {
    ControlRequest request;
    request.session = slots[item.session_slot];
    request.kind = kind;
    request.observation = cold_occupied(item.zone_temp);
    if (kind == RequestKind::kMbrlFallback) {
      request.forecast = steady_forecast(request.observation, horizon);
    }
    return request;
  }
};

TEST(RequestSchedulerTest, DtFastPathMatchesPolicyDecide) {
  const auto policy = toy_policy();
  Stack stack(policy, toy_model(), serving_rs(), /*threads=*/1);

  const env::Observation obs = cold_occupied();
  ControlRequest request;
  request.session = stack.slots[0];
  request.kind = RequestKind::kDtPolicy;
  request.observation = obs;

  const ControlDecision decision = stack.scheduler->serve(request);
  EXPECT_EQ(decision.action_index, policy->decide_index(obs.to_vector()));
  EXPECT_EQ(decision.kind, RequestKind::kDtPolicy);
  EXPECT_GE(decision.policy_version, 1u);
  EXPECT_DOUBLE_EQ(decision.action.heating_c,
                   policy->decide(obs.to_vector()).heating_c);

  const SessionState state = stack.sessions->snapshot(stack.slots[0]);
  EXPECT_EQ(state.dt_decisions, 1u);
  EXPECT_EQ(stack.scheduler->stats().dt_served, 1u);
}

// The acceptance-criteria lock: micro-batched cross-session serving is
// bit-identical to the per-session scalar path at every thread count
// (VERI_HVAC_THREADS=1/4/8 equivalents), for the same admission order.
TEST(RequestSchedulerTest, MicroBatchedDecisionsMatchScalarReferenceAcrossThreadCounts) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = mixed_scenario();
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    Stack stack(policy, model, rs_config, threads);
    std::vector<ControlRequest> requests;
    for (const ScenarioRequest& item : scenario) {
      requests.push_back(stack.request(item, RequestKind::kMbrlFallback, rs_config.horizon));
    }
    const std::vector<ControlDecision> decisions = stack.scheduler->serve_batch(requests);
    ASSERT_EQ(decisions.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(decisions[i].action_index, expected[i])
          << "request " << i << " at " << threads << " threads";
      EXPECT_EQ(decisions[i].kind, RequestKind::kMbrlFallback);
    }
  }
}

TEST(RequestSchedulerTest, AsyncQueueServingMatchesScalarReference) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = mixed_scenario();
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  SchedulerConfig scheduler_config;
  scheduler_config.max_batch = 4;
  scheduler_config.batch_window = std::chrono::microseconds(2000);
  Stack stack(policy, model, rs_config, /*threads=*/4, scheduler_config);
  stack.scheduler->start();

  // Submission order fixes each session's streams at admission, so however
  // the queue drains into micro-batches, decisions must match.
  std::vector<std::future<ControlDecision>> futures;
  for (const ScenarioRequest& item : scenario) {
    futures.push_back(
        stack.scheduler->submit(stack.request(item, RequestKind::kMbrlFallback,
                                              rs_config.horizon)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().action_index, expected[i]) << "request " << i;
  }
  const RequestScheduler::Stats stats = stack.scheduler->stats();
  EXPECT_EQ(stats.mbrl_served, scenario.size());
  EXPECT_GE(stats.batches, 1u);
  stack.scheduler->stop();
}

// SLO-awareness: a request whose latency budget is nearly exhausted must
// close its micro-batch long before the fixed batch_window would, and the
// early close must be visible in stats().deadline_closes.
TEST(RequestSchedulerTest, NearExhaustedBudgetClosesBatchEarly) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = {{0, 17.0}};
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  SchedulerConfig scheduler_config;
  // A pathological 2s straggler window: without the deadline pulling the
  // close forward, this lone request would idle out the full window.
  scheduler_config.batch_window = std::chrono::microseconds(2'000'000);
  scheduler_config.deadline_margin = std::chrono::microseconds(500);
  Stack stack(policy, model, rs_config, /*threads=*/2, scheduler_config);
  stack.scheduler->start();

  ControlRequest request = stack.request(scenario[0], RequestKind::kMbrlFallback,
                                         rs_config.horizon);
  request.latency_budget = std::chrono::microseconds(50'000);
  const auto t0 = std::chrono::steady_clock::now();
  const ControlDecision decision = stack.scheduler->submit(std::move(request)).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(decision.action_index, expected[0]);
  // Generous bound for a loaded CI box: well under the 2s window, even if
  // far over the 50ms budget itself.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  EXPECT_GE(stack.scheduler->stats().deadline_closes, 1u);
  stack.scheduler->stop();
}

// Window adaptation shapes latency only: mixed budgets (some requests
// closing batches early, some riding the window) and non-default queue
// sharding must not change a single decision bit versus the scalar
// reference.
TEST(RequestSchedulerTest, DeadlineWindowAndShardingPreserveDecisionBits) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = mixed_scenario();
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  for (const std::size_t shards : {1u, 3u}) {
    SchedulerConfig scheduler_config;
    scheduler_config.queue_shards = shards;
    scheduler_config.max_batch = 4;
    scheduler_config.batch_window = std::chrono::microseconds(2000);
    scheduler_config.default_latency_budget = std::chrono::microseconds(5000);
    Stack stack(policy, model, rs_config, /*threads=*/4, scheduler_config);
    ASSERT_EQ(stack.scheduler->queue_shard_count(), shards);
    stack.scheduler->start();

    std::vector<std::future<ControlDecision>> futures;
    for (std::size_t i = 0; i < scenario.size(); ++i) {
      ControlRequest request = stack.request(scenario[i], RequestKind::kMbrlFallback,
                                             rs_config.horizon);
      // Alternate tight / default / no budget across the scenario.
      if (i % 3 == 0) request.latency_budget = std::chrono::microseconds(300);
      futures.push_back(stack.scheduler->submit(std::move(request)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get().action_index, expected[i])
          << "request " << i << " with " << shards << " queue shards";
    }
    EXPECT_EQ(stack.scheduler->stats().mbrl_served, scenario.size());
    stack.scheduler->stop();
  }
}

// The default queue sharding aligns to the session manager's lock shards,
// so a session's admissions and its batch queue share one shard index.
TEST(RequestSchedulerTest, DefaultQueueShardingMatchesSessionManager) {
  Stack stack(toy_policy(), toy_model(), serving_rs(), /*threads=*/1);
  EXPECT_EQ(stack.scheduler->queue_shard_count(), stack.sessions->shard_count());
}

TEST(RequestSchedulerTest, InlineServeWithoutWorkerMatchesScalarReference) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = mixed_scenario();
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  Stack stack(policy, model, rs_config, /*threads=*/1);
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    const ControlDecision decision = stack.scheduler->serve(
        stack.request(scenario[i], RequestKind::kMbrlFallback, rs_config.horizon));
    EXPECT_EQ(decision.action_index, expected[i]) << "request " << i;
  }
}

TEST(RequestSchedulerTest, StartStopStartServesAgain) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  // Two decisions on one session, across a stop()/start() cycle: streams
  // 0 and 1 of the session's seed, exactly as uninterrupted serving.
  const std::vector<ScenarioRequest> scenario = {{0, 17.0}, {0, 19.0}};
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  Stack stack(policy, model, rs_config, /*threads=*/2);
  stack.scheduler->start();
  EXPECT_EQ(stack.scheduler
                ->serve(stack.request(scenario[0], RequestKind::kMbrlFallback,
                                      rs_config.horizon))
                .action_index,
            expected[0]);
  stack.scheduler->stop();
  EXPECT_FALSE(stack.scheduler->running());
  stack.scheduler->start();
  EXPECT_TRUE(stack.scheduler->running());
  EXPECT_EQ(stack.scheduler
                ->serve(stack.request(scenario[1], RequestKind::kMbrlFallback,
                                      rs_config.horizon))
                .action_index,
            expected[1]);
  stack.scheduler->stop();
}

TEST(RequestSchedulerTest, RefineFirstActionParity) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  control::RandomShootingConfig rs_config = serving_rs();
  rs_config.samples = 16;
  rs_config.refine_first_action = true;
  const std::vector<ScenarioRequest> scenario = {{0, 16.0}, {1, 19.5}, {0, 21.0}};
  const std::vector<std::size_t> expected = reference_decisions(scenario, *model, rs_config);

  Stack stack(policy, model, rs_config, /*threads=*/4);
  std::vector<ControlRequest> requests;
  for (const ScenarioRequest& item : scenario) {
    requests.push_back(stack.request(item, RequestKind::kMbrlFallback, rs_config.horizon));
  }
  const std::vector<ControlDecision> decisions = stack.scheduler->serve_batch(requests);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decisions[i].action_index, expected[i]) << "request " << i;
  }
}

TEST(RequestSchedulerTest, MixedBatchServesBothTrafficClasses) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = {{0, 16.0}, {1, 18.0}, {2, 20.0}, {3, 22.0}};
  // Slots 0/2 take the fast path; slots 1/3 the fallback. The fallback
  // reference uses each session's stream 0 (its first decision).
  const std::vector<ScenarioRequest> mbrl_only = {{1, 18.0}, {3, 22.0}};
  const std::vector<std::size_t> expected_mbrl =
      reference_decisions(mbrl_only, *model, rs_config);

  Stack stack(policy, model, rs_config, /*threads=*/4);
  std::vector<ControlRequest> requests;
  requests.push_back(stack.request(scenario[0], RequestKind::kDtPolicy, 0));
  requests.push_back(stack.request(scenario[1], RequestKind::kMbrlFallback, rs_config.horizon));
  requests.push_back(stack.request(scenario[2], RequestKind::kDtPolicy, 0));
  requests.push_back(stack.request(scenario[3], RequestKind::kMbrlFallback, rs_config.horizon));

  const std::vector<ControlDecision> decisions = stack.scheduler->serve_batch(requests);
  EXPECT_EQ(decisions[0].action_index,
            policy->decide_index(cold_occupied(16.0).to_vector()));
  EXPECT_EQ(decisions[2].action_index,
            policy->decide_index(cold_occupied(20.0).to_vector()));
  EXPECT_EQ(decisions[1].action_index, expected_mbrl[0]);
  EXPECT_EQ(decisions[3].action_index, expected_mbrl[1]);

  const RequestScheduler::Stats stats = stack.scheduler->stats();
  EXPECT_EQ(stats.dt_served, 2u);
  EXPECT_EQ(stats.mbrl_served, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 2u);
}

TEST(RequestSchedulerTest, HotSwappedBundleServesNewVersion) {
  const auto policy_a = toy_policy(3);
  const auto policy_b = toy_policy(11);
  Stack stack(policy_a, toy_model(), serving_rs(), /*threads=*/1);

  const env::Observation obs = cold_occupied();
  ControlRequest request;
  request.session = stack.slots[0];
  request.kind = RequestKind::kDtPolicy;
  request.observation = obs;

  const ControlDecision before = stack.scheduler->serve(request);
  const std::uint64_t new_version = stack.registry->install("toy", policy_b);
  const ControlDecision after = stack.scheduler->serve(request);

  EXPECT_LT(before.policy_version, new_version);
  EXPECT_EQ(after.policy_version, new_version);
  EXPECT_EQ(after.action_index, policy_b->decide_index(obs.to_vector()));
}

TEST(RequestSchedulerTest, ErrorsSurfaceAsExceptions) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  Stack stack(policy, model, rs_config, /*threads=*/1);

  // Unknown session: rejected at admission.
  ControlRequest unknown;
  unknown.session = 99999;
  unknown.kind = RequestKind::kDtPolicy;
  unknown.observation = cold_occupied();
  EXPECT_THROW(stack.scheduler->serve(unknown), std::out_of_range);

  // Forecast shorter than the optimizer horizon: surfaced via the future.
  ControlRequest short_forecast = stack.request({0, 17.0}, RequestKind::kMbrlFallback, 2);
  EXPECT_THROW(stack.scheduler->serve(short_forecast), std::invalid_argument);

  // Session whose key has neither a dedicated nor a default model.
  SessionConfig orphan;
  orphan.policy_key = "no-model";
  const SessionId orphan_id = stack.sessions->open(orphan);
  ControlRequest no_model = stack.request({0, 17.0}, RequestKind::kMbrlFallback,
                                          rs_config.horizon);
  no_model.session = orphan_id;
  EXPECT_THROW(stack.scheduler->serve(no_model), std::runtime_error);

  // Errors must not poison subsequent serving.
  const ControlDecision decision = stack.scheduler->serve(
      stack.request({1, 18.0}, RequestKind::kMbrlFallback, rs_config.horizon));
  EXPECT_LT(decision.action_index, control::ActionSpace{}.size());
}

TEST(RequestSchedulerTest, DefaultModelBacksKeysWithoutDedicatedEntry) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  Stack stack(policy, model, rs_config, /*threads=*/1);

  SessionConfig session;
  session.policy_key = "other-key";
  session.seed = 7;
  const SessionId id = stack.sessions->open(session);
  stack.scheduler->set_default_model(model);

  ControlRequest request = stack.request({0, 17.0}, RequestKind::kMbrlFallback,
                                         rs_config.horizon);
  request.session = id;
  const ControlDecision decision = stack.scheduler->serve(request);

  const control::RandomShooting rs(rs_config, control::ActionSpace{}, env::RewardConfig{});
  Rng rng = Rng::stream(7, 0);
  EXPECT_EQ(decision.action_index,
            rs.optimize(*model, request.observation, request.forecast, rng));
}

// Observability must observe, never steer: decisions AND the exact Stats
// counters are invariant across pool sizes even with tracing enabled and
// instruments publishing (the PR-9 never-perturb invariant, scheduler leg).
TEST(RequestSchedulerTest, StatsCountersAreThreadCountInvariantWithObsEnabled) {
  const auto policy = toy_policy();
  const auto model = toy_model();
  const control::RandomShootingConfig rs_config = serving_rs();
  const std::vector<ScenarioRequest> scenario = mixed_scenario();

  // Each DT decision consumes the session's next decision index at
  // admission, so the MBRL requests that follow draw streams offset by the
  // slot's DT count — the scalar reference must admit in the same order.
  const control::RandomShooting rs(rs_config, control::ActionSpace{}, env::RewardConfig{});
  std::map<std::size_t, std::uint64_t> next_stream;
  for (const ScenarioRequest& item : scenario) ++next_stream[item.session_slot];
  std::vector<std::size_t> expected;
  for (const ScenarioRequest& item : scenario) {
    const env::Observation obs = cold_occupied(item.zone_temp);
    Rng rng = Rng::stream(slot_seed(item.session_slot), next_stream[item.session_slot]++);
    expected.push_back(rs.optimize(*model, obs, steady_forecast(obs, rs_config.horizon), rng));
  }

  obs::TraceCollector::global().enable();
  std::vector<RequestScheduler::Stats> all_stats;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    Stack stack(policy, model, rs_config, threads);
    for (const ScenarioRequest& item : scenario) {
      stack.scheduler->serve(stack.request(item, RequestKind::kDtPolicy, 0));
    }
    std::vector<ControlRequest> requests;
    for (const ScenarioRequest& item : scenario) {
      requests.push_back(stack.request(item, RequestKind::kMbrlFallback, rs_config.horizon));
    }
    const std::vector<ControlDecision> decisions = stack.scheduler->serve_batch(requests);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(decisions[i].action_index, expected[i])
          << "request " << i << " at " << threads << " threads";
    }
    all_stats.push_back(stack.scheduler->stats());
  }
  obs::TraceCollector::global().disable();
  obs::TraceCollector::global().clear();

  for (std::size_t i = 1; i < all_stats.size(); ++i) {
    EXPECT_EQ(all_stats[i].dt_served, all_stats[0].dt_served);
    EXPECT_EQ(all_stats[i].mbrl_served, all_stats[0].mbrl_served);
    EXPECT_EQ(all_stats[i].batches, all_stats[0].batches);
    EXPECT_EQ(all_stats[i].batched_requests, all_stats[0].batched_requests);
    EXPECT_EQ(all_stats[i].deadline_closes, all_stats[0].deadline_closes);
  }
  EXPECT_EQ(all_stats[0].dt_served, scenario.size());
  EXPECT_EQ(all_stats[0].mbrl_served, scenario.size());
  EXPECT_EQ(all_stats[0].deadline_closes, 0u);  // inline serving has no windows
}

// Sampled DT timing: with period P and a tap installed, exactly 1-in-P DT
// decisions are timed, and each timed latency also lands in the obs
// histogram (`serve_dt_latency_seconds`).
TEST(RequestSchedulerTest, SampledDtTimingFeedsTapAndObsHistogram) {
  struct CountingTap : DecisionTap {
    std::size_t events = 0;
    std::size_t timed = 0;
    void on_decision(const DecisionEvent& event) noexcept override {
      ++events;
      if (event.timed) {
        ++timed;
        EXPECT_GT(event.latency_seconds, 0.0);
      }
    }
  };

  const auto policy = toy_policy();
  SchedulerConfig config;
  config.dt_timing_sample_period = 4;
  Stack stack(policy, toy_model(), serving_rs(), /*threads=*/1, config);
  const auto tap = std::make_shared<CountingTap>();
  stack.scheduler->set_tap(tap);

  const std::uint64_t histogram_before =
      obs::histogram("serve_dt_latency_seconds").snapshot().count;
  constexpr std::size_t kDecisions = 16;
  for (std::size_t i = 0; i < kDecisions; ++i) {
    stack.scheduler->serve(stack.request({i % 6, 16.0 + static_cast<double>(i)},
                                         RequestKind::kDtPolicy, 0));
  }
  const std::uint64_t histogram_after =
      obs::histogram("serve_dt_latency_seconds").snapshot().count;

  EXPECT_EQ(tap->events, kDecisions);
  EXPECT_EQ(tap->timed, kDecisions / 4);
  EXPECT_EQ(histogram_after - histogram_before, kDecisions / 4);
}

}  // namespace
}  // namespace verihvac::serve
