#include "serve/fleet_harness.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve_test_utils.hpp"

namespace verihvac::serve {
namespace {

using testing::pool_with_threads;
using testing::toy_model;
using testing::toy_policy;

FleetAssetProvider toy_assets() {
  // One shared toy asset pair for every cell: the harness tests exercise
  // the serving plumbing, not per-climate extraction.
  const FleetAssets assets{toy_policy(), toy_model()};
  return [assets](const std::string&, const FleetPreset&) { return assets; };
}

FleetConfig small_fleet() {
  FleetConfig config;
  config.climates = {"Pittsburgh"};
  config.presets = {{"baseline", 1.0}};
  config.buildings_per_cell = 4;
  config.mbrl_fraction = 0.25;  // 1 fallback + 3 fast-path buildings
  config.steps = 6;
  config.days = 1;
  config.seed = 99;
  config.rs.samples = 8;
  config.rs.horizon = 3;
  return config;
}

TEST(FleetHarnessTest, DrivesFleetAndAggregates) {
  FleetHarness harness(small_fleet(), toy_assets(), pool_with_threads(2));
  const FleetReport report = harness.run();

  EXPECT_EQ(report.buildings, 4u);
  EXPECT_EQ(report.steps, 6u);
  EXPECT_EQ(report.dt_decisions, 3u * 6u);
  EXPECT_EQ(report.mbrl_decisions, 1u * 6u);
  EXPECT_EQ(report.dt_latency.count, report.dt_decisions);
  EXPECT_EQ(report.mbrl_latency.count, report.mbrl_decisions);
  // Throughput denominators are measured serving windows.
  EXPECT_GT(report.dt_latency.serve_seconds, 0.0);
  EXPECT_GT(report.mbrl_latency.serve_seconds, 0.0);
  EXPECT_GT(report.energy_kwh, 0.0);
  EXPECT_GE(report.violation_rate(), 0.0);
  EXPECT_LE(report.violation_rate(), 1.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_LE(report.dt_latency.p50_us, report.dt_latency.p99_us);
  EXPECT_EQ(report.scheduler_stats.mbrl_served, report.mbrl_decisions);
  EXPECT_EQ(harness.sessions().size(), 4u);
  EXPECT_EQ(harness.registry().size(), 1u);
  EXPECT_FALSE(report.summary().empty());
  EXPECT_NE(report.to_json().find("\"dt_latency\""), std::string::npos);
}

TEST(FleetHarnessTest, MultiCellGridProvisionsPerCellBundles) {
  FleetConfig config = small_fleet();
  config.climates = {"Pittsburgh", "Tucson"};
  config.presets = {{"baseline", 1.0}, {"oversized", 2.0}};
  config.buildings_per_cell = 2;
  config.steps = 2;
  FleetHarness harness(config, toy_assets(), pool_with_threads(2));
  const FleetReport report = harness.run();

  EXPECT_EQ(report.buildings, 8u);            // 2 climates x 2 presets x 2
  EXPECT_EQ(harness.registry().size(), 4u);   // one bundle per cell
  EXPECT_EQ(harness.sessions().size(), 8u);
  EXPECT_EQ(report.dt_decisions + report.mbrl_decisions,
            report.buildings * report.steps);
}

// The fleet's plant trajectories (hence energy/violations) are decision-
// determined, and decisions are bit-identical across thread counts and
// across async-vs-inline serving — the subsystem's determinism contract
// surfaced at the metrics level.
TEST(FleetHarnessTest, MetricsBitIdenticalAcrossThreadsAndServingModes) {
  const FleetAssetProvider assets = toy_assets();

  struct Outcome {
    double energy;
    std::size_t violations;
    std::size_t occupied;
  };
  std::vector<Outcome> outcomes;
  for (const bool async : {false, true}) {
    for (const std::size_t threads : {1u, 4u, 8u}) {
      FleetConfig config = small_fleet();
      config.async = async;
      FleetHarness harness(config, assets, pool_with_threads(threads));
      const FleetReport report = harness.run();
      outcomes.push_back({report.energy_kwh, report.occupied_violations,
                          report.occupied_steps});
    }
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].energy, outcomes[0].energy) << "variant " << i;
    EXPECT_EQ(outcomes[i].violations, outcomes[0].violations) << "variant " << i;
    EXPECT_EQ(outcomes[i].occupied, outcomes[0].occupied) << "variant " << i;
  }
}

}  // namespace
}  // namespace verihvac::serve
