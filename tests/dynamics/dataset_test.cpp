#include "dynamics/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace verihvac::dyn {
namespace {

env::EnvConfig tiny_env() {
  env::EnvConfig cfg;
  cfg.days = 1;
  cfg.weather_seed = 5;
  return cfg;
}

Transition make_transition(double zone_temp, double heat, double cool, double next) {
  Transition t;
  t.input = {zone_temp, 0.0, 50.0, 3.0, 100.0, 5.0};
  t.action = sim::SetpointPair{heat, cool};
  t.next_zone_temp = next;
  return t;
}

TEST(DatasetTest, MatricesHaveModelLayout) {
  TransitionDataset data;
  data.add(make_transition(20.0, 21.0, 24.0, 20.5));
  data.add(make_transition(22.0, 15.0, 30.0, 21.4));
  const Matrix x = data.inputs();
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), kModelInputDims);
  EXPECT_DOUBLE_EQ(x(0, env::kZoneTemp), 20.0);
  EXPECT_DOUBLE_EQ(x(0, kHeatSpIndex), 21.0);
  EXPECT_DOUBLE_EQ(x(0, kCoolSpIndex), 24.0);
  const Matrix y = data.targets();
  EXPECT_DOUBLE_EQ(y(1, 0), 21.4);
  const Matrix p = data.policy_inputs();
  EXPECT_EQ(p.cols(), env::kInputDims);
  EXPECT_DOUBLE_EQ(p(1, env::kZoneTemp), 22.0);
}

TEST(DatasetTest, AppendConcatenates) {
  TransitionDataset a;
  a.add(make_transition(20.0, 21.0, 24.0, 20.5));
  TransitionDataset b;
  b.add(make_transition(21.0, 22.0, 25.0, 21.5));
  b.add(make_transition(22.0, 23.0, 26.0, 22.5));
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(2).next_zone_temp, 22.5);
}

TEST(CollectionTest, CollectsOneTransitionPerStep) {
  CollectionConfig cc;
  cc.episodes = 1;
  const TransitionDataset data = collect_historical_data(tiny_env(), cc);
  EXPECT_EQ(data.size(), static_cast<std::size_t>(96));
}

TEST(CollectionTest, MultipleEpisodesConcatenate) {
  CollectionConfig cc;
  cc.episodes = 2;
  const TransitionDataset data = collect_historical_data(tiny_env(), cc);
  EXPECT_EQ(data.size(), static_cast<std::size_t>(2 * 96));
}

TEST(CollectionTest, DeterministicForSameSeed) {
  CollectionConfig cc;
  cc.episodes = 1;
  cc.seed = 33;
  const TransitionDataset a = collect_historical_data(tiny_env(), cc);
  const TransitionDataset b = collect_historical_data(tiny_env(), cc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.at(i).next_zone_temp, b.at(i).next_zone_temp);
    EXPECT_DOUBLE_EQ(a.at(i).action.heating_c, b.at(i).action.heating_c);
  }
}

TEST(CollectionTest, ExplorationVisitsDiverseActions) {
  CollectionConfig cc;
  cc.episodes = 2;
  cc.exploration_rate = 1.0;
  const TransitionDataset data = collect_historical_data(tiny_env(), cc);
  std::set<double> heats;
  for (std::size_t i = 0; i < data.size(); ++i) heats.insert(data.at(i).action.heating_c);
  EXPECT_GT(heats.size(), 5u);
}

TEST(CollectionTest, ActionsAreAlwaysValidPairs) {
  CollectionConfig cc;
  cc.episodes = 1;
  cc.exploration_rate = 1.0;
  const TransitionDataset data = collect_historical_data(tiny_env(), cc);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& a = data.at(i).action;
    EXPECT_GE(a.heating_c, 15.0);
    EXPECT_LE(a.heating_c, 23.0);
    EXPECT_GE(a.cooling_c, 21.0);
    EXPECT_LE(a.cooling_c, 30.0);
    EXPECT_LE(a.heating_c, a.cooling_c);
  }
}

TEST(CollectionTest, TransitionsChainConsistently) {
  // next_zone_temp of step i equals zone temp of step i+1 within an episode.
  CollectionConfig cc;
  cc.episodes = 1;
  const TransitionDataset data = collect_historical_data(tiny_env(), cc);
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(data.at(i).next_zone_temp, data.at(i + 1).input[env::kZoneTemp]);
  }
}

}  // namespace
}  // namespace verihvac::dyn
