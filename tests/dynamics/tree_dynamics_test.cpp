#include "dynamics/tree_dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "envlib/observation.hpp"

namespace verihvac::dyn {
namespace {

/// Toy plant: linear drift toward outdoors plus bounded HVAC forcing.
double toy_next(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  double dt = 0.05 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 2.0);
  if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 2.0);
  return t + dt;
}

TransitionDataset toy_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TransitionDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    Transition t;
    t.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 90.0),
               rng.uniform(0.0, 10.0),  rng.uniform(0.0, 500.0),  rng.bernoulli(0.5) ? 11.0 : 0.0};
    t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
    t.action.cooling_c = static_cast<double>(rng.uniform_int(23, 30));
    t.next_zone_temp = toy_next(t.input, t.action);
    data.add(t);
  }
  return data;
}

TEST(TreeDynamicsTest, TrainRejectsEmptyDataset) {
  TreeDynamicsModel model;
  EXPECT_THROW(model.train(TransitionDataset{}), std::invalid_argument);
}

TEST(TreeDynamicsTest, PredictBeforeTrainThrows) {
  TreeDynamicsModel model;
  EXPECT_THROW(model.predict_raw(std::vector<double>(kModelInputDims, 0.0)), std::logic_error);
}

TEST(TreeDynamicsTest, PredictValidatesDimensions) {
  TreeDynamicsModel model;
  model.train(toy_data(100, 1));
  EXPECT_THROW(model.predict({1.0, 2.0}, {}), std::invalid_argument);
  EXPECT_THROW(model.predict_raw({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(TreeDynamicsTest, LearnsToyPlantWellEnoughForControl) {
  TreeDynamicsModel model;
  model.train(toy_data(3000, 2));
  const double held_out = model.rmse(toy_data(500, 99));
  // The plant's one-step deltas span roughly +-2 degC; a useful surrogate
  // must be well under half a degree out of sample.
  EXPECT_LT(held_out, 0.5);
}

TEST(TreeDynamicsTest, PredictionTracksZoneTemperature) {
  // The model predicts s + delta(x): shifting only the zone temperature of
  // a query shifts the prediction by at least the shift minus the largest
  // possible delta difference — in particular the prediction is not a
  // constant in s as a naive absolute-target tree would be on a box.
  TreeDynamicsModel model;
  model.train(toy_data(2000, 3));
  std::vector<double> x = {20.0, 0.0, 50.0, 3.0, 100.0, 0.0};
  const sim::SetpointPair action{18.0, 26.0};
  const double base = model.predict(x, action);
  x[env::kZoneTemp] = 21.0;
  const double shifted = model.predict(x, action);
  EXPECT_NEAR(shifted - base, 1.0, 0.9);  // slope ~1 in s, modulo leaf changes
}

TEST(TreeDynamicsTest, MinSamplesLeafFloorsApplied) {
  TreeDynamicsConfig cfg;
  cfg.min_samples_leaf = 8;
  TreeDynamicsModel model(cfg);
  model.train(toy_data(400, 4));
  for (int leaf : model.tree().leaves()) {
    EXPECT_GE(model.tree().node(static_cast<std::size_t>(leaf)).samples, 8u);
  }
}

TEST(TreeDynamicsTest, NextStateRangeRejectsWrongDims) {
  TreeDynamicsModel model;
  model.train(toy_data(100, 5));
  EXPECT_THROW(model.next_state_range(Box(6)), std::invalid_argument);
}

class NextStateRangeSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextStateRangeSoundness, SampledNextStatesLieWithinRange) {
  TreeDynamicsModel model;
  model.train(toy_data(1500, 6));
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    Box box(kModelInputDims);
    // A plausible operating box: tight zone-temp band, moderate weather.
    const double s_lo = rng.uniform(14.0, 26.0);
    box.clip(env::kZoneTemp, Interval::bounded(s_lo, s_lo + rng.uniform(0.1, 3.0)));
    box.clip(env::kOutdoorTemp, Interval::bounded(-5.0, 30.0));
    box.clip(env::kHumidity, Interval::bounded(20.0, 90.0));
    box.clip(env::kWind, Interval::bounded(0.0, 10.0));
    box.clip(env::kSolar, Interval::bounded(0.0, 500.0));
    box.clip(env::kOccupancy, Interval::bounded(0.0, 11.0));
    box.clip(kHeatSpIndex, Interval::bounded(15.0, 23.0));
    box.clip(kCoolSpIndex, Interval::bounded(23.0, 30.0));

    const Interval range = model.next_state_range(box);
    for (int s = 0; s < 40; ++s) {
      std::vector<double> point(kModelInputDims);
      for (std::size_t d = 0; d < kModelInputDims; ++d) {
        point[d] = rng.uniform(box[d].lo, box[d].hi);
      }
      const double next = model.predict_raw(point);
      EXPECT_GE(next, range.lo - 1e-9);
      EXPECT_LE(next, range.hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NextStateRangeSoundness, ::testing::Values(13u, 37u, 61u));

}  // namespace
}  // namespace verihvac::dyn
