#include "dynamics/dynamics_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dynamics/model_eval.hpp"

namespace verihvac::dyn {
namespace {

/// Synthetic ground-truth plant for fast, controlled tests: a linear
/// one-step thermal response. dT = a*(out - T) + b*(heat_sp - T)_+ etc.
double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  const double outdoor = x[env::kOutdoorTemp];
  double dt = 0.08 * (outdoor - t);
  if (t < a.heating_c) dt += 0.35 * std::min(a.heating_c - t, 1.5);
  if (t > a.cooling_c) dt -= 0.30 * std::min(t - a.cooling_c, 1.5);
  dt += 0.01 * x[env::kOccupancy];
  return t + dt;
}

TransitionDataset toy_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TransitionDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    Transition t;
    t.input = {rng.uniform(14.0, 28.0), rng.uniform(-10.0, 15.0), rng.uniform(20.0, 90.0),
               rng.uniform(0.0, 8.0),   rng.uniform(0.0, 500.0),  rng.bernoulli(0.5) ? 11.0 : 0.0};
    t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
    t.action.cooling_c =
        static_cast<double>(rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
    t.next_zone_temp = toy_plant(t.input, t.action);
    data.add(t);
  }
  return data;
}

DynamicsModelConfig fast_config() {
  DynamicsModelConfig cfg;
  cfg.hidden = {24, 24};
  cfg.trainer.epochs = 60;
  cfg.trainer.adam.learning_rate = 3e-3;
  return cfg;
}

TEST(DynamicsModelTest, UntrainedPredictThrows) {
  DynamicsModel model;
  EXPECT_THROW(model.predict({20, 0, 50, 3, 0, 0}, sim::SetpointPair{20, 24}),
               std::logic_error);
}

TEST(DynamicsModelTest, TrainOnEmptyThrows) {
  DynamicsModel model;
  EXPECT_THROW(model.train(TransitionDataset{}), std::invalid_argument);
}

TEST(DynamicsModelTest, LearnsToyPlantAccurately) {
  const TransitionDataset train_data = toy_dataset(2000, 1);
  const TransitionDataset test_data = toy_dataset(300, 2);
  DynamicsModel model(fast_config());
  model.train(train_data);
  const double rmse = one_step_rmse(model, test_data);
  EXPECT_LT(rmse, 0.15);  // one-step error well under the comfort band width
}

TEST(DynamicsModelTest, PredictionRespondsToAction) {
  const TransitionDataset data = toy_dataset(2000, 3);
  DynamicsModel model(fast_config());
  model.train(data);
  const std::vector<double> cold = {16.0, -5.0, 60.0, 3.0, 0.0, 11.0};
  const double heated = model.predict(cold, sim::SetpointPair{23.0, 30.0});
  const double setback = model.predict(cold, sim::SetpointPair{15.0, 30.0});
  EXPECT_GT(heated, setback + 0.2);
}

TEST(DynamicsModelTest, PredictIsDeterministic) {
  const TransitionDataset data = toy_dataset(500, 4);
  DynamicsModel model(fast_config());
  model.train(data);
  const std::vector<double> x = {20.0, 0.0, 50.0, 2.0, 100.0, 11.0};
  const double p1 = model.predict(x, sim::SetpointPair{21.0, 25.0});
  const double p2 = model.predict(x, sim::SetpointPair{21.0, 25.0});
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(DynamicsModelTest, PredictRawMatchesPredict) {
  const TransitionDataset data = toy_dataset(500, 5);
  DynamicsModel model(fast_config());
  model.train(data);
  const std::vector<double> x = {19.0, -2.0, 70.0, 4.0, 50.0, 0.0};
  std::vector<double> raw = x;
  raw.push_back(20.0);
  raw.push_back(26.0);
  EXPECT_DOUBLE_EQ(model.predict(x, sim::SetpointPair{20.0, 26.0}), model.predict_raw(raw));
}

TEST(DynamicsModelTest, PredictBatchMatchesScalar) {
  const TransitionDataset data = toy_dataset(500, 6);
  DynamicsModel model(fast_config());
  model.train(data);
  const Matrix inputs = data.inputs();
  const auto batch = model.predict_batch(inputs);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(batch[r], model.predict_raw(inputs.row(r)));
  }
}

TEST(DynamicsModelTest, PredictBatchIntoBitIdenticalToScalarPredict) {
  const TransitionDataset data = toy_dataset(500, 9);
  DynamicsModel model(fast_config());
  model.train(data);
  const Matrix inputs = data.inputs();

  BatchScratch batch_scratch;
  std::vector<double> batched;
  model.predict_batch_into(inputs, batched, batch_scratch);
  ASSERT_EQ(batched.size(), inputs.rows());

  PredictScratch scalar_scratch;
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    const std::vector<double> row = inputs.row(r);
    const std::vector<double> x(row.begin(), row.begin() + env::kInputDims);
    const sim::SetpointPair action{row[kHeatSpIndex], row[kCoolSpIndex]};
    // EXPECT_EQ: the batched fused path must match the scalar hot path to
    // the last bit (the rollout-engine determinism contract).
    EXPECT_EQ(batched[r], model.predict(x, action, scalar_scratch)) << "row " << r;
  }
}

TEST(DynamicsModelTest, PredictBatchIntoUntrainedThrows) {
  DynamicsModel model;
  BatchScratch scratch;
  std::vector<double> out;
  EXPECT_THROW(model.predict_batch_into(Matrix(2, kModelInputDims), out, scratch),
               std::logic_error);
}

TEST(DynamicsModelTest, PredictBatchIntoScratchReuseAcrossBatchSizes) {
  const TransitionDataset data = toy_dataset(300, 10);
  DynamicsModel model(fast_config());
  model.train(data);
  const Matrix inputs = data.inputs();

  BatchScratch scratch;
  std::vector<double> full;
  model.predict_batch_into(inputs, full, scratch);

  // Re-run a prefix with the (now larger-capacity) scratch: same bits.
  Matrix prefix(7, kModelInputDims);
  for (std::size_t r = 0; r < prefix.rows(); ++r) prefix.set_row(r, inputs.row(r));
  std::vector<double> small;
  model.predict_batch_into(prefix, small, scratch);
  for (std::size_t r = 0; r < prefix.rows(); ++r) EXPECT_EQ(small[r], full[r]);
}

TEST(DynamicsModelTest, TrainingReportShowsConvergence) {
  const TransitionDataset data = toy_dataset(1000, 7);
  DynamicsModel model(fast_config());
  const nn::TrainingReport report = model.train(data);
  EXPECT_LT(report.final_train_loss, report.train_loss_per_epoch.front());
}

TEST(ModelEvalTest, KStepRolloutErrorGrowsWithHorizon) {
  // Open-loop error should be no smaller over 8 steps than over 1 step.
  CollectionConfig cc;
  cc.episodes = 1;
  env::EnvConfig ec;
  ec.days = 3;
  const TransitionDataset data = collect_historical_data(ec, cc);
  DynamicsModel model(fast_config());
  model.train(data);
  const double e1 = k_step_rollout_mae(model, data, 1);
  const double e8 = k_step_rollout_mae(model, data, 8);
  EXPECT_GE(e8, e1 * 0.5);  // allow noise but 8-step should not be drastically smaller
  EXPECT_LT(e1, 0.5);
}

TEST(ModelEvalTest, RejectsDegenerateInputs) {
  DynamicsModel model(fast_config());
  const TransitionDataset data = toy_dataset(10, 8);
  model.train(data);
  EXPECT_THROW(one_step_rmse(model, TransitionDataset{}), std::invalid_argument);
  EXPECT_THROW(k_step_rollout_mae(model, data, 10), std::invalid_argument);
}

}  // namespace
}  // namespace verihvac::dyn
