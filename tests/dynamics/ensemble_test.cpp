#include "dynamics/ensemble.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace verihvac::dyn {
namespace {

TransitionDataset linear_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TransitionDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    Transition t;
    t.input = {rng.uniform(16.0, 26.0), rng.uniform(-5.0, 10.0), 50.0, 3.0, 100.0, 11.0};
    t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
    t.action.cooling_c = 30.0;
    t.next_zone_temp =
        t.input[0] + 0.1 * (t.input[1] - t.input[0]) + 0.05 * (t.action.heating_c - 15.0);
    data.add(t);
  }
  return data;
}

EnsembleConfig fast_ensemble(std::size_t members = 3) {
  EnsembleConfig cfg;
  cfg.members = members;
  cfg.member_config.hidden = {16, 16};
  cfg.member_config.trainer.epochs = 30;
  cfg.member_config.trainer.adam.learning_rate = 3e-3;
  return cfg;
}

TEST(EnsembleTest, RejectsZeroMembers) {
  EnsembleConfig cfg;
  cfg.members = 0;
  EXPECT_THROW(EnsembleDynamics{cfg}, std::invalid_argument);
}

TEST(EnsembleTest, PredictBeforeTrainThrows) {
  EnsembleDynamics ens(fast_ensemble());
  EXPECT_THROW(ens.predict({20, 0, 50, 3, 0, 0}, sim::SetpointPair{20, 24}),
               std::logic_error);
}

TEST(EnsembleTest, TrainsAllMembers) {
  EnsembleDynamics ens(fast_ensemble(3));
  ens.train(linear_dataset(400, 1));
  EXPECT_TRUE(ens.trained());
  EXPECT_EQ(ens.member_count(), 3u);
  for (std::size_t m = 0; m < 3; ++m) EXPECT_TRUE(ens.member(m).trained());
}

TEST(EnsembleTest, MembersDifferButAgreeInDistribution) {
  EnsembleDynamics ens(fast_ensemble(3));
  ens.train(linear_dataset(600, 2));
  const std::vector<double> x = {20.0, 2.0, 50.0, 3.0, 100.0, 11.0};
  const sim::SetpointPair a{21.0, 30.0};
  const EnsemblePrediction p = ens.predict(x, a);
  // In-distribution: members agree within a fraction of a degree...
  EXPECT_LT(p.stddev, 0.5);
  // ...but are not bit-identical (bootstrap + different init seeds).
  EXPECT_NE(ens.member(0).predict(x, a), ens.member(1).predict(x, a));
  // Mean is inside the member range.
  double lo = 1e9;
  double hi = -1e9;
  for (std::size_t m = 0; m < 3; ++m) {
    const double v = ens.member(m).predict(x, a);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(p.mean, lo - 1e-9);
  EXPECT_LE(p.mean, hi + 1e-9);
}

TEST(EnsembleTest, UncertaintyHigherOutOfDistribution) {
  EnsembleDynamics ens(fast_ensemble(4));
  ens.train(linear_dataset(600, 3));
  const sim::SetpointPair a{21.0, 30.0};
  // In-distribution query.
  const EnsemblePrediction in_dist = ens.predict({20.0, 2.0, 50.0, 3.0, 100.0, 11.0}, a);
  // Far out of distribution (zone at 45 degC never occurred).
  const EnsemblePrediction out_dist = ens.predict({45.0, 30.0, 50.0, 3.0, 100.0, 11.0}, a);
  EXPECT_GT(out_dist.stddev, in_dist.stddev);
}

TEST(EnsembleTest, SingleMemberHasZeroSpread) {
  EnsembleDynamics ens(fast_ensemble(1));
  ens.train(linear_dataset(300, 4));
  const EnsemblePrediction p =
      ens.predict({20.0, 2.0, 50.0, 3.0, 100.0, 11.0}, sim::SetpointPair{21.0, 30.0});
  EXPECT_DOUBLE_EQ(p.stddev, 0.0);
}

TEST(EnsembleTest, PredictBatchIntoBitIdenticalToScalarPredict) {
  EnsembleDynamics ens(fast_ensemble(3));
  const TransitionDataset data = linear_dataset(250, 5);
  ens.train(data);
  const Matrix inputs = data.inputs();

  BatchScratch scratch;
  std::vector<EnsemblePrediction> batched;
  ens.predict_batch_into(inputs, batched, scratch);
  ASSERT_EQ(batched.size(), inputs.rows());

  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    const std::vector<double> row = inputs.row(r);
    const std::vector<double> x(row.begin(), row.begin() + env::kInputDims);
    const sim::SetpointPair action{row[kHeatSpIndex], row[kCoolSpIndex]};
    const EnsemblePrediction scalar = ens.predict(x, action);
    EXPECT_EQ(batched[r].mean, scalar.mean) << "row " << r;
    EXPECT_EQ(batched[r].stddev, scalar.stddev) << "row " << r;
  }
}

TEST(EnsembleTest, PredictBatchIntoUntrainedThrows) {
  EnsembleDynamics ens(fast_ensemble(2));
  BatchScratch scratch;
  std::vector<EnsemblePrediction> out;
  EXPECT_THROW(ens.predict_batch_into(Matrix(1, kModelInputDims), out, scratch),
               std::logic_error);
}

}  // namespace
}  // namespace verihvac::dyn
