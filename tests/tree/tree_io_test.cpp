#include "tree/tree_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.hpp"

namespace verihvac::tree {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "verihvac_tree_io";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

DecisionTreeClassifier sample_tree(std::uint64_t seed = 3, std::size_t n = 200) {
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(-3.0, 3.0)});
    y.push_back(static_cast<int>(rng.index(4)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 4);
  return tree;
}

TEST(TreeIoTest, TextExportMentionsNamesAndClasses) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0, 0.0}, {9.0, 0.0}}, {0, 1}, 2);
  const std::string text = to_text(tree, {"zone_temp", "outdoor"}, {"heat", "cool"});
  EXPECT_NE(text.find("zone_temp"), std::string::npos);
  EXPECT_NE(text.find("heat"), std::string::npos);
  EXPECT_NE(text.find("if "), std::string::npos);
  EXPECT_NE(text.find("else"), std::string::npos);
}

TEST(TreeIoTest, TextExportFallsBackToIndices) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {9.0}}, {0, 1}, 2);
  const std::string text = to_text(tree);
  EXPECT_NE(text.find("x[0]"), std::string::npos);
  EXPECT_NE(text.find("class"), std::string::npos);
}

TEST(TreeIoTest, DotExportIsWellFormed) {
  const DecisionTreeClassifier tree = sample_tree();
  const std::string dot = to_dot(tree, {"a", "b"}, {});
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Every node appears.
  EXPECT_NE(dot.find("n0"), std::string::npos);
}

TEST(TreeIoTest, UnfittedExportThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(to_text(tree), std::logic_error);
  EXPECT_THROW(to_dot(tree), std::logic_error);
  EXPECT_THROW(save_tree(tree, temp_path("nope.tree")), std::logic_error);
}

TEST(TreeIoTest, SaveLoadRoundTripPreservesPredictions) {
  const DecisionTreeClassifier original = sample_tree(5, 300);
  const std::string path = temp_path("round_trip.tree");
  save_tree(original, path);
  const DecisionTreeClassifier loaded = load_tree(path);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.leaf_count(), original.leaf_count());
  EXPECT_EQ(loaded.num_features(), original.num_features());
  EXPECT_EQ(loaded.num_classes(), original.num_classes());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> q = {rng.uniform(-0.5, 1.5), rng.uniform(-4.0, 4.0)};
    EXPECT_EQ(loaded.predict(q), original.predict(q));
  }
}

TEST(TreeIoTest, RoundTripPreservesBoxes) {
  const DecisionTreeClassifier original = sample_tree(9, 150);
  const std::string path = temp_path("boxes.tree");
  save_tree(original, path);
  const DecisionTreeClassifier loaded = load_tree(path);
  const auto leaves = original.leaves();
  const auto loaded_leaves = loaded.leaves();
  ASSERT_EQ(leaves.size(), loaded_leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const Box a = original.leaf_box(leaves[i]);
    const Box b = loaded.leaf_box(loaded_leaves[i]);
    for (std::size_t d = 0; d < a.size(); ++d) {
      EXPECT_DOUBLE_EQ(a[d].lo, b[d].lo);
      EXPECT_DOUBLE_EQ(a[d].hi, b[d].hi);
    }
  }
}

TEST(TreeIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_tree("/no/such/file.tree"), std::runtime_error);
}

TEST(TreeIoTest, LoadRejectsCorruptHeader) {
  const std::string path = temp_path("corrupt.tree");
  {
    std::ofstream out(path);
    out << "not-a-tree v9\n";
  }
  EXPECT_THROW(load_tree(path), std::runtime_error);
}

TEST(TreeIoTest, LoadRejectsTruncatedFile) {
  const DecisionTreeClassifier tree = sample_tree(11, 100);
  const std::string path = temp_path("trunc.tree");
  save_tree(tree, path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_tree(path), std::runtime_error);
}

}  // namespace
}  // namespace verihvac::tree
