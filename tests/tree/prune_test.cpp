// merge_redundant_leaves: function-preserving tree simplification.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tree/cart.hpp"
#include "tree/prune.hpp"

namespace verihvac::tree {
namespace {

DecisionTreeClassifier noisy_tree(std::uint64_t seed, std::size_t n) {
  // Two-class problem with label noise: the unbounded-depth CART
  // memorizes the noise, guaranteeing identical-label sibling leaves.
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    const int label = a > 0.5 ? 1 : 0;
    y.push_back(rng.bernoulli(0.15) ? 1 - label : label);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 2);
  return tree;
}

TEST(PruneTest, PredictionsUnchangedEverywhere) {
  DecisionTreeClassifier tree = noisy_tree(11, 400);
  const DecisionTreeClassifier original = tree;
  merge_redundant_leaves(tree);

  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> x = {rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    ASSERT_EQ(tree.predict(x), original.predict(x));
  }
}

TEST(PruneTest, ReportIsConsistent) {
  DecisionTreeClassifier tree = noisy_tree(12, 400);
  const std::size_t before = tree.node_count();
  const PruneReport report = merge_redundant_leaves(tree);
  EXPECT_EQ(report.nodes_before, before);
  EXPECT_EQ(report.nodes_after, tree.node_count());
  // Each merge removes exactly two nodes from the compacted tree.
  EXPECT_EQ(report.nodes_after, report.nodes_before - 2 * report.merges);
}

TEST(PruneTest, FixedPointIsIdempotent) {
  DecisionTreeClassifier tree = noisy_tree(13, 300);
  merge_redundant_leaves(tree);
  const PruneReport second = merge_redundant_leaves(tree);
  EXPECT_EQ(second.merges, 0u);
  EXPECT_EQ(second.nodes_after, second.nodes_before);
}

TEST(PruneTest, CollapsesManuallyBuiltRedundantSplit) {
  // root: x0 <= 0.5 ? leaf(A) : leaf(A) — must collapse to one leaf.
  std::vector<TreeNode> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].samples = 10;
  nodes[1].label = 4;
  nodes[1].samples = 6;
  nodes[1].parent = 0;
  nodes[2].label = 4;
  nodes[2].samples = 4;
  nodes[2].parent = 0;
  auto tree = DecisionTreeClassifier::from_nodes(nodes, 1, 5);

  const PruneReport report = merge_redundant_leaves(tree);
  EXPECT_EQ(report.merges, 1u);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({0.1}), 4);
  EXPECT_EQ(tree.predict({0.9}), 4);
  // Sample counts aggregate through the merge.
  EXPECT_EQ(tree.node(0).samples, 10u);
}

TEST(PruneTest, CascadingMerges) {
  // A three-level chain that collapses completely once the bottom merges.
  //        n0(x0<=0.5)
  //        /        \
  //   n1(x1<=0.5)   leaf(7)
  //    /     \
  // leaf(7) leaf(7)
  std::vector<TreeNode> nodes(5);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].feature = 1;
  nodes[1].threshold = 0.5;
  nodes[1].left = 3;
  nodes[1].right = 4;
  nodes[1].parent = 0;
  nodes[2].label = 7;
  nodes[2].parent = 0;
  nodes[3].label = 7;
  nodes[3].parent = 1;
  nodes[4].label = 7;
  nodes[4].parent = 1;
  auto tree = DecisionTreeClassifier::from_nodes(nodes, 2, 8);

  const PruneReport report = merge_redundant_leaves(tree);
  EXPECT_EQ(report.merges, 2u);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({0.3, 0.9}), 7);
}

TEST(PruneTest, LeavesDistinctLabelsAlone) {
  std::vector<TreeNode> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].label = 0;
  nodes[1].parent = 0;
  nodes[2].label = 1;
  nodes[2].parent = 0;
  auto tree = DecisionTreeClassifier::from_nodes(nodes, 1, 2);
  const PruneReport report = merge_redundant_leaves(tree);
  EXPECT_EQ(report.merges, 0u);
  EXPECT_EQ(tree.node_count(), 3u);
}

}  // namespace
}  // namespace verihvac::tree
