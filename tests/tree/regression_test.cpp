#include "tree/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace verihvac::tree {
namespace {

TEST(RegressionTest, FitRejectsBadInputs) {
  DecisionTreeRegressor tree;
  EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {0.5, 1.0}), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(RegressionTest, PredictBeforeFitThrows) {
  DecisionTreeRegressor tree;
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
}

TEST(RegressionTest, ConstantTargetsYieldSingleLeafMean) {
  DecisionTreeRegressor tree;
  tree.fit({{1.0}, {5.0}, {9.0}}, {2.5, 2.5, 2.5});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({100.0}), 2.5);
}

TEST(RegressionTest, LearnsStepFunctionExactly) {
  DecisionTreeRegressor tree;
  tree.fit({{1.0}, {2.0}, {8.0}, {9.0}}, {-1.0, -1.0, 4.0, 4.0});
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_DOUBLE_EQ(tree.predict({0.0}), -1.0);
  EXPECT_DOUBLE_EQ(tree.predict({10.0}), 4.0);
  EXPECT_DOUBLE_EQ(tree.node(0).threshold, 5.0);
}

TEST(RegressionTest, InterpolatesTrainingDataWithUnboundedDepth) {
  // Distinct inputs + unbounded depth => every training point gets its own
  // leaf, so train MSE is zero.
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    y.push_back(rng.uniform(-5.0, 5.0));
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.mse(x, y), 0.0, 1e-18);
  EXPECT_EQ(tree.leaf_count(), x.size());
}

TEST(RegressionTest, DepthCapIsRespected) {
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0.0, 1.0)});
    y.push_back(std::sin(6.28 * x.back()[0]));
  }
  RegressionConfig cfg;
  cfg.max_depth = 3;
  DecisionTreeRegressor tree(cfg);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3u);
  EXPECT_LE(tree.leaf_count(), 8u);
}

TEST(RegressionTest, MinSamplesLeafIsRespected) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    x.push_back({rng.uniform(0.0, 1.0)});
    y.push_back(rng.uniform(0.0, 1.0));
  }
  RegressionConfig cfg;
  cfg.min_samples_leaf = 10;
  DecisionTreeRegressor tree(cfg);
  tree.fit(x, y);
  for (int leaf : tree.leaves()) {
    EXPECT_GE(tree.node(static_cast<std::size_t>(leaf)).samples, 10u);
  }
}

TEST(RegressionTest, DeeperTreesReduceApproximationError) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x.push_back({v});
    y.push_back(v * v);  // smooth target
  }
  double prev_mse = std::numeric_limits<double>::infinity();
  for (std::size_t depth : {1u, 3u, 6u}) {
    RegressionConfig cfg;
    cfg.max_depth = depth;
    DecisionTreeRegressor tree(cfg);
    tree.fit(x, y);
    const double now = tree.mse(x, y);
    EXPECT_LT(now, prev_mse) << "depth " << depth;
    prev_mse = now;
  }
}

TEST(RegressionTest, SplitsIgnoreConstantFeatures) {
  // Feature 1 is constant; every split must use feature 0.
  DecisionTreeRegressor tree;
  tree.fit({{1.0, 7.0}, {2.0, 7.0}, {3.0, 7.0}, {4.0, 7.0}}, {0.0, 0.0, 1.0, 1.0});
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) EXPECT_EQ(node.feature, 0);
  }
}

TEST(RegressionTest, LeafBoxContainsItsTrainingRegion) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    x.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
    y.push_back(x.back()[0] > 0 ? 1.0 : -1.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  for (const auto& point : x) {
    const int leaf = tree.decision_leaf(point);
    EXPECT_TRUE(tree.leaf_box(leaf).contains(point));
  }
}

TEST(RegressionTest, ValueRangeOnFullSpaceSpansAllLeafValues) {
  DecisionTreeRegressor tree;
  tree.fit({{1.0}, {2.0}, {8.0}, {9.0}}, {-1.0, -1.0, 4.0, 4.0});
  const Interval range = tree.value_range(Box(1));
  EXPECT_DOUBLE_EQ(range.lo, -1.0);
  EXPECT_DOUBLE_EQ(range.hi, 4.0);
}

TEST(RegressionTest, ValueRangeOnSingleLeafBoxIsDegenerate) {
  DecisionTreeRegressor tree;
  tree.fit({{1.0}, {2.0}, {8.0}, {9.0}}, {-1.0, -1.0, 4.0, 4.0});
  Box left(1);
  left.clip(0, Interval::bounded(0.0, 3.0));  // entirely on the low side
  const Interval range = tree.value_range(left);
  EXPECT_DOUBLE_EQ(range.lo, -1.0);
  EXPECT_DOUBLE_EQ(range.hi, -1.0);
}

TEST(RegressionTest, ValueRangeRejectsWrongDims) {
  DecisionTreeRegressor tree;
  tree.fit({{1.0}, {9.0}}, {0.0, 1.0});
  EXPECT_THROW(tree.value_range(Box(3)), std::invalid_argument);
}

// Soundness sweep: for random sub-boxes, every sampled prediction inside
// the box must land inside value_range(box) — value_range over-approximates
// nothing and under-approximates nothing attainable.
class ValueRangeSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueRangeSoundness, SampledPredictionsLieWithinRange) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 250; ++i) {
    x.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    y.push_back(std::sin(x.back()[0]) + 0.5 * x.back()[1] - 0.2 * x.back()[2]);
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);

  for (int trial = 0; trial < 20; ++trial) {
    Box box(3);
    for (std::size_t d = 0; d < 3; ++d) {
      const double a = rng.uniform(-10.0, 10.0);
      const double b = rng.uniform(-10.0, 10.0);
      box.clip(d, Interval::bounded(std::min(a, b), std::max(a, b)));
    }
    const Interval range = tree.value_range(box);
    for (int s = 0; s < 50; ++s) {
      std::vector<double> point(3);
      for (std::size_t d = 0; d < 3; ++d) point[d] = rng.uniform(box[d].lo, box[d].hi);
      const double value = tree.predict(point);
      EXPECT_GE(value, range.lo - 1e-12);
      EXPECT_LE(value, range.hi + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRangeSoundness, ::testing::Values(11u, 29u, 47u, 83u));

}  // namespace
}  // namespace verihvac::tree
