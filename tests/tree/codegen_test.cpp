#include "tree/codegen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tree/cart.hpp"

namespace verihvac::tree {
namespace {

DecisionTreeClassifier make_tree(std::uint64_t seed, std::size_t samples = 200,
                                 std::size_t features = 4, std::size_t classes = 5) {
  Rng rng(seed);
  std::vector<std::vector<double>> x(samples, std::vector<double>(features));
  std::vector<int> y(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t j = 0; j < features; ++j) x[i][j] = rng.uniform(-5.0, 35.0);
    // A structured label so the tree has real splits: bucket a linear score.
    const double score = 0.7 * x[i][0] - 0.4 * x[i][1] + 0.2 * x[i][2];
    y[i] = static_cast<int>(std::fabs(score)) % static_cast<int>(classes);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, classes);
  return tree;
}

TEST(CodegenTest, RejectsUnfittedTree) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(to_c_source(tree), std::invalid_argument);
}

TEST(CodegenTest, RejectsEmptyFunctionName) {
  auto tree = make_tree(1);
  CodegenOptions options;
  options.function_name = "";
  EXPECT_THROW(to_c_source(tree, options), std::invalid_argument);
}

TEST(CodegenTest, BannerReportsTreeShape) {
  auto tree = make_tree(2);
  const std::string src = to_c_source(tree);
  EXPECT_NE(src.find("nodes=" + std::to_string(tree.node_count())), std::string::npos);
  EXPECT_NE(src.find("leaves=" + std::to_string(tree.leaf_count())), std::string::npos);
  EXPECT_NE(src.find("int dt_predict(const double* x)"), std::string::npos);
}

TEST(CodegenTest, StaticLinkageAndCustomName) {
  auto tree = make_tree(3);
  CodegenOptions options;
  options.function_name = "my_tree";
  options.static_linkage = true;
  options.banner = false;
  const std::string src = to_c_source(tree, options);
  EXPECT_EQ(src.rfind("static int my_tree(", 0), 0u) << src.substr(0, 80);
}

TEST(CodegenTest, FeatureNamesAppearAsComments) {
  auto tree = make_tree(4);
  CodegenOptions options;
  options.feature_names = {"zone_temp", "outdoor_temp", "humidity", "wind"};
  const std::string src = to_c_source(tree, options);
  // The fitted tree splits on at least one feature, whose name must show up.
  bool any = false;
  for (const auto& name : options.feature_names) {
    if (src.find("/* " + name + " */") != std::string::npos) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(CodegenTest, FlatTableEmitsOneRowPerNode) {
  auto tree = make_tree(5);
  CodegenOptions options;
  options.style = CodegenStyle::kFlatTable;
  const std::string src = to_c_source(tree, options);
  EXPECT_NE(src.find("nodes[" + std::to_string(tree.node_count()) + "]"), std::string::npos);
  // Every leaf contributes a "{-1, ..." row.
  std::size_t rows = 0;
  for (std::size_t pos = src.find("{-1,"); pos != std::string::npos;
       pos = src.find("{-1,", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, tree.leaf_count());
}

TEST(CodegenTest, SingleLeafTreeIsAConstantFunction) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {2.0}}, {3, 3}, 4);
  const std::string src = to_c_source(tree);
  EXPECT_NE(src.find("return 3;"), std::string::npos);
}

// --- compile-and-replay equivalence ------------------------------------
//
// The real guarantee: the emitted C computes the same label as the
// in-memory tree for every input. We compile the source with the host C
// compiler, feed it inputs on stdin, and diff against predict().

class CodegenEquivalence : public ::testing::TestWithParam<CodegenStyle> {};

TEST_P(CodegenEquivalence, CompiledModuleMatchesPredict) {
  const auto tree = make_tree(17, /*samples=*/400, /*features=*/6, /*classes=*/9);
  CodegenOptions options;
  options.style = GetParam();
  const std::string dir = ::testing::TempDir();
  const std::string tag = GetParam() == CodegenStyle::kNestedIf ? "nested" : "table";
  const std::string c_path = dir + "/dt_" + tag + ".c";
  const std::string bin_path = dir + "/dt_" + tag + ".bin";

  {
    std::ofstream c_file(c_path);
    ASSERT_TRUE(c_file.is_open());
    c_file << to_c_source(tree, options);
    // A stdin->stdout harness: one feature vector per line, label out.
    c_file << "#include <stdio.h>\n"
              "int main(void) {\n"
              "  double x[6];\n"
              "  while (scanf(\"%lf %lf %lf %lf %lf %lf\", &x[0], &x[1], &x[2], &x[3],\n"
              "               &x[4], &x[5]) == 6) {\n"
              "    printf(\"%d\\n\", dt_predict(x));\n"
              "  }\n"
              "  return 0;\n"
              "}\n";
  }
  const std::string compile = "cc -std=c99 -O2 -o " + bin_path + " " + c_path + " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "host C compiler unavailable";
  }

  // Inputs: random vectors plus values sitting exactly on split thresholds,
  // where emitted <= comparisons are most likely to diverge if the
  // threshold did not round-trip losslessly.
  Rng rng(99);
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniform(-10.0, 40.0);
    inputs.push_back(std::move(x));
  }
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) continue;
    std::vector<double> x(6, 0.0);
    x[static_cast<std::size_t>(node.feature)] = node.threshold;  // boundary: must go left
    inputs.push_back(x);
  }

  const std::string in_path = dir + "/dt_" + tag + ".in";
  {
    std::ofstream in_file(in_path);
    in_file.precision(17);
    for (const auto& x : inputs) {
      for (std::size_t j = 0; j < x.size(); ++j) in_file << (j ? " " : "") << x[j];
      in_file << "\n";
    }
  }
  const std::string out_path = dir + "/dt_" + tag + ".out";
  ASSERT_EQ(std::system((bin_path + " < " + in_path + " > " + out_path).c_str()), 0);

  std::ifstream out_file(out_path);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    int label = -1;
    ASSERT_TRUE(out_file >> label) << "short output at row " << i;
    EXPECT_EQ(label, tree.predict(inputs[i])) << "input row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, CodegenEquivalence,
                         ::testing::Values(CodegenStyle::kNestedIf, CodegenStyle::kFlatTable),
                         [](const auto& info) {
                           return info.param == CodegenStyle::kNestedIf ? "NestedIf" : "FlatTable";
                         });

}  // namespace
}  // namespace verihvac::tree
