// split_leaf: the function-preserving refinement primitive used by the
// verifier to isolate the out-of-comfort side of a straddling leaf.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tree/cart.hpp"

namespace verihvac::tree {
namespace {

/// A small tree over 2-dim inputs with 3 classes.
DecisionTreeClassifier small_tree() {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    x.push_back({a, b});
    y.push_back(a < 3.0 ? 0 : (b < 5.0 ? 1 : 2));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 3);
  return tree;
}

TEST(SplitLeafTest, PreservesPredictions) {
  DecisionTreeClassifier tree = small_tree();
  const DecisionTreeClassifier original = tree;

  // Split every original leaf once, at the middle of its box along dim 0.
  for (int leaf : original.leaves()) {
    const Box box = tree.leaf_box(leaf);
    const double lo = std::max(box[0].lo, 0.0);
    const double hi = std::min(box[0].hi, 10.0);
    tree.split_leaf(leaf, 0, (lo + hi) / 2.0);
  }

  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> x = {rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    EXPECT_EQ(tree.predict(x), original.predict(x));
  }
}

TEST(SplitLeafTest, AddsExactlyTwoNodes) {
  DecisionTreeClassifier tree = small_tree();
  const std::size_t before = tree.node_count();
  const std::size_t leaves_before = tree.leaf_count();
  const int leaf = tree.leaves().front();
  tree.split_leaf(leaf, 1, 5.0);
  EXPECT_EQ(tree.node_count(), before + 2);
  EXPECT_EQ(tree.leaf_count(), leaves_before + 1);  // one leaf became two
}

TEST(SplitLeafTest, ChildrenInheritLabelAndLinkToParent) {
  DecisionTreeClassifier tree = small_tree();
  const int leaf = tree.leaves().front();
  const int label = tree.node(static_cast<std::size_t>(leaf)).label;
  const auto [left, right] = tree.split_leaf(leaf, 0, 1.5);

  EXPECT_EQ(tree.node(static_cast<std::size_t>(left)).label, label);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(right)).label, label);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(left)).parent, leaf);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(right)).parent, leaf);
  EXPECT_FALSE(tree.node(static_cast<std::size_t>(leaf)).is_leaf());
  EXPECT_EQ(tree.node(static_cast<std::size_t>(leaf)).feature, 0);
  EXPECT_DOUBLE_EQ(tree.node(static_cast<std::size_t>(leaf)).threshold, 1.5);
}

TEST(SplitLeafTest, SplitBoxesPartitionTheOriginalBox) {
  DecisionTreeClassifier tree = small_tree();
  const int leaf = tree.leaves().front();
  const Box original_box = tree.leaf_box(leaf);
  const auto [left, right] = tree.split_leaf(leaf, 1, 4.0);

  const Box left_box = tree.leaf_box(left);
  const Box right_box = tree.leaf_box(right);
  EXPECT_DOUBLE_EQ(left_box[1].hi, 4.0);
  EXPECT_DOUBLE_EQ(right_box[1].lo, 4.0);
  EXPECT_DOUBLE_EQ(left_box[1].lo, original_box[1].lo);
  EXPECT_DOUBLE_EQ(right_box[1].hi, original_box[1].hi);
  // Untouched dimension is inherited on both sides.
  EXPECT_DOUBLE_EQ(left_box[0].lo, original_box[0].lo);
  EXPECT_DOUBLE_EQ(right_box[0].hi, original_box[0].hi);
}

TEST(SplitLeafTest, RejectsNonLeafAndBadFeature) {
  DecisionTreeClassifier tree = small_tree();
  // Root is not a leaf in this tree.
  EXPECT_THROW(tree.split_leaf(0, 0, 1.0), std::invalid_argument);
  const int leaf = tree.leaves().front();
  EXPECT_THROW(tree.split_leaf(leaf, 7, 1.0), std::invalid_argument);
  EXPECT_THROW(tree.split_leaf(-1, 0, 1.0), std::invalid_argument);
}

TEST(SplitLeafTest, SplitLeafCanBeRelabeledIndependently) {
  DecisionTreeClassifier tree = small_tree();
  const int leaf = tree.leaves().front();
  const Box box = tree.leaf_box(leaf);
  const double mid = (std::max(box[0].lo, 0.0) + std::min(box[0].hi, 10.0)) / 2.0;
  const auto [left, right] = tree.split_leaf(leaf, 0, mid);
  const int old_label = tree.node(static_cast<std::size_t>(left)).label;
  const int new_label = (old_label + 1) % 3;
  tree.set_leaf_label(right, new_label);

  // A point strictly on the left keeps the old class; on the right gets
  // the new one (probe inside the box).
  std::vector<double> probe_left = {mid - 0.1, 0.0};
  std::vector<double> probe_right = {mid + 0.1, 0.0};
  // Clamp probes into the leaf's second-dim interval.
  const double b = std::min(std::max(0.5, box[1].lo + 0.1), box[1].hi - 0.1);
  probe_left[1] = b;
  probe_right[1] = b;
  if (tree.decision_leaf(probe_left) == left) {
    EXPECT_EQ(tree.predict(probe_left), old_label);
  }
  if (tree.decision_leaf(probe_right) == right) {
    EXPECT_EQ(tree.predict(probe_right), new_label);
  }
}

}  // namespace
}  // namespace verihvac::tree
