#include "tree/cart.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace verihvac::tree {
namespace {

TEST(CartTest, FitRejectsBadInputs) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit({}, {}, 2), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {5}, 2), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {-1}, 2), std::invalid_argument);
}

TEST(CartTest, PredictBeforeFitThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
}

TEST(CartTest, SingleClassYieldsSingleLeaf) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {2.0}, {3.0}}, {1, 1, 1}, 3);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.predict({99.0}), 1);
}

TEST(CartTest, LearnsAxisAlignedSplit) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {2.0}, {8.0}, {9.0}}, {0, 0, 1, 1}, 2);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.predict({0.0}), 0);
  EXPECT_EQ(tree.predict({10.0}), 1);
  // Threshold is the midpoint between adjacent distinct values (2 and 8).
  EXPECT_DOUBLE_EQ(tree.node(0).threshold, 5.0);
}

TEST(CartTest, LearnsTwoDimensionalCheckerboardExactly) {
  // XOR-style pattern requires depth >= 2 and splits on both features.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (double a : {0.0, 1.0}) {
    for (double b : {0.0, 1.0}) {
      for (int rep = 0; rep < 3; ++rep) {
        x.push_back({a + rep * 0.01, b + rep * 0.01});
        y.push_back((a + b == 1.0) ? 1 : 0);
      }
    }
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 2);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(CartTest, PerfectTrainingAccuracyOnSeparableData) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    y.push_back(a > 0.5 ? (b > 0.3 ? 2 : 1) : 0);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 3);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
}

TEST(CartTest, UnboundedDepthMemorizesNoisyLabels) {
  // With unbounded depth + min_samples_split=2 (the paper's settings), the
  // tree drives training error to zero even on noisy labels when inputs
  // are distinct.
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(5)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 5);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
}

TEST(CartTest, MaxDepthLimitsTree) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(2)));
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTreeClassifier tree(cfg);
  tree.fit(x, y, 2);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(CartTest, MinSamplesLeafRespected) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(2)));
  }
  TreeConfig cfg;
  cfg.min_samples_leaf = 10;
  DecisionTreeClassifier tree(cfg);
  tree.fit(x, y, 2);
  for (int leaf : tree.leaves()) {
    EXPECT_GE(tree.node(static_cast<std::size_t>(leaf)).samples, 10u);
  }
}

TEST(CartTest, NodeCountIdentity) {
  // A binary tree always satisfies: nodes = 2 * leaves - 1.
  Rng rng(13);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(4)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 4);
  EXPECT_EQ(tree.node_count(), 2 * tree.leaf_count() - 1);
}

TEST(CartTest, DecisionLeafIsConsistentWithPredict) {
  Rng rng(15);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(3)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 3);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> q = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const int leaf = tree.decision_leaf(q);
    EXPECT_TRUE(tree.node(static_cast<std::size_t>(leaf)).is_leaf());
    EXPECT_EQ(tree.predict(q), tree.node(static_cast<std::size_t>(leaf)).label);
  }
}

TEST(CartTest, LeafBoxContainsItsTrainingPoints) {
  Rng rng(17);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back({rng.uniform(0.0, 10.0), rng.uniform(-5.0, 5.0)});
    y.push_back(static_cast<int>(rng.index(3)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 3);
  // Every input lands in the leaf whose box contains it.
  for (const auto& point : x) {
    const int leaf = tree.decision_leaf(point);
    const Box box = tree.leaf_box(leaf);
    EXPECT_TRUE(box.contains(point));
  }
}

TEST(CartTest, LeafBoxesPartitionTheInputSpace) {
  // Any query point must be contained in exactly one leaf box.
  Rng rng(19);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(2)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 2);
  const auto leaves = tree.leaves();
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> q = {rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)};
    int containing = 0;
    for (int leaf : leaves) {
      if (tree.leaf_box(leaf).contains(q)) ++containing;
    }
    EXPECT_EQ(containing, 1) << "query (" << q[0] << ", " << q[1] << ")";
  }
}

TEST(CartTest, PathToLeafFollowsSplits) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {2.0}, {8.0}, {9.0}}, {0, 0, 1, 1}, 2);
  const auto leaves = tree.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  for (int leaf : leaves) {
    const auto path = tree.path_to(leaf);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0].node, 0);
    // Left leaf got "went_left", right leaf the opposite.
    const Box box = tree.leaf_box(leaf);
    if (path[0].went_left) {
      EXPECT_DOUBLE_EQ(box[0].hi, 5.0);
    } else {
      EXPECT_DOUBLE_EQ(box[0].lo, 5.0);
    }
  }
}

TEST(CartTest, PathToNonLeafThrows) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {9.0}}, {0, 1}, 2);
  EXPECT_THROW(tree.path_to(0), std::invalid_argument);  // root is internal
  EXPECT_THROW(tree.path_to(99), std::invalid_argument);
}

TEST(CartTest, SetLeafLabelEditsDecision) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {9.0}}, {0, 1}, 3);
  const int leaf = tree.decision_leaf({0.0});
  EXPECT_EQ(tree.predict({0.0}), 0);
  tree.set_leaf_label(leaf, 2);
  EXPECT_EQ(tree.predict({0.0}), 2);
  EXPECT_THROW(tree.set_leaf_label(leaf, 7), std::invalid_argument);
  EXPECT_THROW(tree.set_leaf_label(0, 1), std::invalid_argument);  // internal node
}

TEST(CartTest, FromNodesValidates) {
  DecisionTreeClassifier tree;
  tree.fit({{1.0}, {9.0}}, {0, 1}, 2);
  std::vector<TreeNode> nodes(tree.nodes().begin(), tree.nodes().end());
  EXPECT_NO_THROW(DecisionTreeClassifier::from_nodes(nodes, 1, 2));
  nodes[0].left = 99;
  EXPECT_THROW(DecisionTreeClassifier::from_nodes(nodes, 1, 2), std::invalid_argument);
}

/// Parameterized agreement sweep: tree memorizes datasets of varying size.
class CartMemorizationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CartMemorizationTest, TrainAccuracyIsPerfect) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                 rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.index(6)));
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y, 6);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
  EXPECT_EQ(tree.node_count(), 2 * tree.leaf_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CartMemorizationTest,
                         ::testing::Values(10, 50, 200, 800));

}  // namespace
}  // namespace verihvac::tree
