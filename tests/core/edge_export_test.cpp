#include "core/edge_export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/dt_policy.hpp"

namespace verihvac::core {
namespace {

/// A deterministic synthetic decision dataset: warm zones get cooling-heavy
/// actions, cold zones heating-heavy, so the fitted tree has real structure.
DecisionDataset synthetic_decisions(const control::ActionSpace& actions, std::size_t n,
                                    std::uint64_t seed) {
  Rng rng(seed);
  DecisionDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    DecisionRecord rec;
    rec.input = {rng.uniform(10.0, 32.0), rng.uniform(-10.0, 38.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),  rng.bernoulli(0.5) ? 11.0 : 0.0};
    const double zone = rec.input[0];
    sim::SetpointPair target;
    if (zone > 26.0) {
      target = {15.0, 21.0};
    } else if (zone < 19.0) {
      target = {22.0, 30.0};
    } else {
      target = {20.0, 24.0};
    }
    rec.action_index = actions.nearest_index(target);
    data.records.push_back(std::move(rec));
  }
  return data;
}

DtPolicy make_policy(std::uint64_t seed = 7) {
  control::ActionSpace actions;
  return DtPolicy::fit(synthetic_decisions(actions, 300, seed), actions);
}

TEST(EdgeExportTest, HeaderHasGuardAndPrototype) {
  const auto policy = make_policy();
  const std::string header = policy_to_c_header(policy);
  EXPECT_NE(header.find("#ifndef veri_hvac_H_"), std::string::npos);
  EXPECT_NE(header.find("void veri_hvac_decide(const double x[6], double* heating_c, "
                        "double* cooling_c);"),
            std::string::npos);
}

TEST(EdgeExportTest, RejectsNonIdentifierPrefix) {
  const auto policy = make_policy();
  EdgeExportOptions options;
  options.prefix = "bad prefix!";
  EXPECT_THROW(policy_to_c(policy, options), std::invalid_argument);
  options.prefix = "";
  EXPECT_THROW(policy_to_c_header(policy, options), std::invalid_argument);
}

TEST(EdgeExportTest, SourceEmbedsActionTablesAndInputDocs) {
  const auto policy = make_policy();
  const std::string src = policy_to_c(policy);
  const std::string n = std::to_string(policy.actions().size());
  EXPECT_NE(src.find("veri_hvac_heating_c[" + n + "]"), std::string::npos);
  EXPECT_NE(src.find("veri_hvac_cooling_c[" + n + "]"), std::string::npos);
  // Input layout documentation names the physical variables.
  EXPECT_NE(src.find("x[0] = "), std::string::npos);
  EXPECT_NE(src.find("Do not edit"), std::string::npos);
}

TEST(EdgeExportTest, ExportWritesBothFiles) {
  const auto policy = make_policy();
  const std::string dir = ::testing::TempDir();
  EdgeExportOptions options;
  options.prefix = "exported_dt";
  export_policy_c(policy, dir, options);
  std::ifstream c_file(dir + "/exported_dt.c");
  std::ifstream h_file(dir + "/exported_dt.h");
  ASSERT_TRUE(c_file.is_open());
  ASSERT_TRUE(h_file.is_open());
  std::stringstream c_buf, h_buf;
  c_buf << c_file.rdbuf();
  h_buf << h_file.rdbuf();
  EXPECT_EQ(c_buf.str(), policy_to_c(policy, options));
  EXPECT_EQ(h_buf.str(), policy_to_c_header(policy, options));
}

TEST(EdgeExportTest, ExportToMissingDirectoryThrows) {
  const auto policy = make_policy();
  EXPECT_THROW(export_policy_c(policy, "/nonexistent/dir/for/export"), std::runtime_error);
}

class EdgeExportEquivalence : public ::testing::TestWithParam<tree::CodegenStyle> {};

TEST_P(EdgeExportEquivalence, CompiledDecideMatchesPolicy) {
  const auto policy = make_policy(21);
  EdgeExportOptions options;
  options.prefix = "edge_dt";
  options.style = GetParam();

  const std::string dir = ::testing::TempDir();
  const std::string tag =
      GetParam() == tree::CodegenStyle::kNestedIf ? "edge_nested" : "edge_table";
  const std::string c_path = dir + "/" + tag + ".c";
  const std::string bin_path = dir + "/" + tag + ".bin";
  {
    std::ofstream c_file(c_path);
    ASSERT_TRUE(c_file.is_open());
    c_file << policy_to_c(policy, options);
    c_file << "#include <stdio.h>\n"
              "int main(void) {\n"
              "  double x[6], h, c;\n"
              "  while (scanf(\"%lf %lf %lf %lf %lf %lf\", &x[0], &x[1], &x[2], &x[3],\n"
              "               &x[4], &x[5]) == 6) {\n"
              "    edge_dt_decide(x, &h, &c);\n"
              "    printf(\"%.17g %.17g\\n\", h, c);\n"
              "  }\n"
              "  return 0;\n"
              "}\n";
  }
  if (std::system(("cc -std=c99 -O2 -o " + bin_path + " " + c_path + " 2>/dev/null").c_str()) !=
      0) {
    GTEST_SKIP() << "host C compiler unavailable";
  }

  Rng rng(5);
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < 300; ++i) {
    inputs.push_back({rng.uniform(5.0, 35.0), rng.uniform(-15.0, 42.0), rng.uniform(0.0, 100.0),
                      rng.uniform(0.0, 15.0), rng.uniform(0.0, 800.0), rng.uniform(0.0, 20.0)});
  }
  const std::string in_path = dir + "/" + tag + ".in";
  {
    std::ofstream in_file(in_path);
    in_file.precision(17);
    for (const auto& x : inputs) {
      for (std::size_t j = 0; j < x.size(); ++j) in_file << (j ? " " : "") << x[j];
      in_file << "\n";
    }
  }
  const std::string out_path = dir + "/" + tag + ".out";
  ASSERT_EQ(std::system((bin_path + " < " + in_path + " > " + out_path).c_str()), 0);

  std::ifstream out_file(out_path);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    double heat = 0.0, cool = 0.0;
    ASSERT_TRUE(out_file >> heat >> cool) << "short output at row " << i;
    const auto expected = policy.decide(inputs[i]);
    EXPECT_DOUBLE_EQ(heat, expected.heating_c) << "row " << i;
    EXPECT_DOUBLE_EQ(cool, expected.cooling_c) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, EdgeExportEquivalence,
                         ::testing::Values(tree::CodegenStyle::kNestedIf,
                                           tree::CodegenStyle::kFlatTable),
                         [](const auto& info) {
                           return info.param == tree::CodegenStyle::kNestedIf ? "NestedIf"
                                                                              : "FlatTable";
                         });

}  // namespace
}  // namespace verihvac::core
