#include "core/decision_data.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/core_test_utils.hpp"

namespace verihvac::core {
namespace {

using testutil::toy_history;
using testutil::toy_model;

TEST(ModalIndexTest, PicksMostFrequent) {
  EXPECT_EQ(modal_index({1, 5, 2}), 1u);
  EXPECT_EQ(modal_index({9}), 0u);
}

TEST(ModalIndexTest, TieBreaksToLowestIndex) {
  EXPECT_EQ(modal_index({3, 3, 1}), 0u);
}

TEST(ModalIndexTest, EmptyThrows) {
  EXPECT_THROW(modal_index({}), std::invalid_argument);
}

TEST(DecisionDatasetTest, ViewsAndPrefix) {
  DecisionDataset data;
  data.records.push_back({{1, 2, 3, 4, 5, 6}, 7});
  data.records.push_back({{6, 5, 4, 3, 2, 1}, 9});
  const auto xs = data.inputs();
  const auto ys = data.labels();
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_DOUBLE_EQ(xs[1][0], 6.0);
  EXPECT_EQ(ys[0], 7);
  const DecisionDataset one = data.prefix(1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(data.prefix(10).size(), 2u);
}

TEST(AugmentedSamplerTest, RejectsBadConstruction) {
  EXPECT_THROW(AugmentedSampler(Matrix(0, 6), 0.01), std::invalid_argument);
  Matrix data(3, 6, 1.0);
  EXPECT_THROW(AugmentedSampler(data, -0.1), std::invalid_argument);
}

TEST(AugmentedSamplerTest, ZeroNoiseReproducesHistoricalRows) {
  const auto history = toy_history(200, 1);
  const Matrix inputs = history.policy_inputs();
  AugmentedSampler sampler(inputs, 0.0);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto [x, row] = sampler.sample(rng);
    const auto original = inputs.row(row);
    for (std::size_t c = 0; c < x.size(); ++c) EXPECT_DOUBLE_EQ(x[c], original[c]);
  }
}

TEST(AugmentedSamplerTest, NoiseScalesWithDimensionStd) {
  // Eq. 5: per-dimension noise std = noise_level * dimension std. Uses the
  // unclamped zone/outdoor dims of the baseline schema as the wide/narrow
  // probes (the sampler validates row width against its schema).
  Matrix data(2000, 6);
  Rng gen(3);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    data(r, 0) = gen.normal(0.0, 10.0);  // wide dimension
    data(r, 1) = gen.normal(0.0, 0.1);   // narrow dimension
  }
  AugmentedSampler sampler(data, 0.5);
  EXPECT_NEAR(sampler.dimension_stds()[0], 10.0, 0.5);
  EXPECT_NEAR(sampler.dimension_stds()[1], 0.1, 0.01);

  Rng rng(4);
  RunningStats dev0;
  RunningStats dev1;
  for (int i = 0; i < 4000; ++i) {
    const auto [x, row] = sampler.sample(rng);
    dev0.add(x[0] - data(row, 0));
    dev1.add(x[1] - data(row, 1));
  }
  EXPECT_NEAR(dev0.stddev(), 5.0, 0.3);   // 0.5 * 10
  EXPECT_NEAR(dev1.stddev(), 0.05, 0.01); // 0.5 * 0.1
}

TEST(AugmentedSamplerTest, PhysicalClampsHold) {
  const auto history = toy_history(300, 5);
  AugmentedSampler sampler(history.policy_inputs(), 1.0);  // huge noise
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const auto [x, row] = sampler.sample(rng);
    (void)row;
    EXPECT_GE(x[env::kHumidity], 0.0);
    EXPECT_LE(x[env::kHumidity], 100.0);
    EXPECT_GE(x[env::kWind], 0.0);
    EXPECT_GE(x[env::kSolar], 0.0);
    EXPECT_GE(x[env::kOccupancy], 0.0);
  }
}

TEST(AugmentedSamplerTest, SampleManyCount) {
  const auto history = toy_history(100, 7);
  AugmentedSampler sampler(history.policy_inputs(), 0.01);
  Rng rng(8);
  EXPECT_EQ(sampler.sample_many(42, rng).size(), 42u);
}

TEST(AugmentedSamplerTest, HigherNoiseIncreasesJsdFromOriginal) {
  // The Fig. 3 calibration premise at the sampler level.
  const auto history = toy_history(2000, 9);
  const Matrix inputs = history.policy_inputs();
  std::vector<std::vector<double>> original;
  for (std::size_t r = 0; r < inputs.rows(); ++r) original.push_back(inputs.row(r));

  double prev_jsd = -1.0;
  for (const double noise : {0.01, 0.2, 0.8}) {
    AugmentedSampler sampler(inputs, noise);
    Rng rng(10);
    const auto sampled = sampler.sample_many(2000, rng);
    const double jsd = mean_marginal_jsd(original, sampled, 24);
    EXPECT_GT(jsd, prev_jsd - 0.01);
    prev_jsd = jsd;
  }
}

TEST(GeneratorTest, ForecastContinuesHistory) {
  const auto history = toy_history(300, 11);
  DecisionDataConfig cfg;
  DecisionDataGenerator generator(history, cfg);
  const auto forecast = generator.forecast_from(10, 5);
  ASSERT_EQ(forecast.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    const auto& expected = history.at(10 + k + 1).input;
    EXPECT_DOUBLE_EQ(forecast[k].weather.outdoor_temp_c, expected[env::kOutdoorTemp]);
    EXPECT_DOUBLE_EQ(forecast[k].occupants, expected[env::kOccupancy]);
  }
}

TEST(GeneratorTest, ForecastClampsAtHistoryEnd) {
  const auto history = toy_history(50, 12);
  DecisionDataGenerator generator(history, DecisionDataConfig{});
  const auto forecast = generator.forecast_from(48, 6);
  ASSERT_EQ(forecast.size(), 6u);
  const auto& last = history.at(49).input;
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(forecast[k].weather.outdoor_temp_c, last[env::kOutdoorTemp]);
  }
}

TEST(GeneratorTest, RejectsZeroRepeats) {
  const auto history = toy_history(50, 13);
  DecisionDataConfig cfg;
  cfg.mc_repeats = 0;
  EXPECT_THROW(DecisionDataGenerator(history, cfg), std::invalid_argument);
}

TEST(GeneratorTest, GeneratesRequestedPointsWithValidLabels) {
  const auto history = toy_history(400, 14);
  const auto model = toy_model(history);
  control::ActionSpace actions;
  control::MbrlAgent agent(*model, control::RandomShootingConfig{24, 4, 0.99}, actions,
                           env::RewardConfig{}, 15);
  DecisionDataConfig cfg;
  cfg.mc_repeats = 3;
  cfg.seed = 16;
  DecisionDataGenerator generator(history, cfg);
  const DecisionDataset data = generator.generate(agent, 40);
  ASSERT_EQ(data.size(), 40u);
  for (const auto& record : data.records) {
    EXPECT_EQ(record.input.size(), env::kInputDims);
    EXPECT_LT(record.action_index, actions.size());
  }
}

TEST(GeneratorTest, GenerationIsDeterministicGivenSeeds) {
  const auto history = toy_history(400, 17);
  const auto model = toy_model(history);
  auto make = [&]() {
    control::MbrlAgent agent(*model, control::RandomShootingConfig{16, 4, 0.99},
                             control::ActionSpace{}, env::RewardConfig{}, 18);
    agent.reset();
    DecisionDataConfig cfg;
    cfg.mc_repeats = 2;
    cfg.seed = 19;
    DecisionDataGenerator generator(history, cfg);
    return generator.generate(agent, 20);
  };
  const DecisionDataset a = make();
  const DecisionDataset b = make();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records[i].action_index, b.records[i].action_index);
    EXPECT_EQ(a.records[i].input, b.records[i].input);
  }
}

TEST(GeneratorTest, DistilledActionsReflectComfortLogic) {
  // Occupied cold inputs should overwhelmingly distill to heating actions,
  // unoccupied ones to setback.
  const auto history = toy_history(600, 20);
  const auto model = toy_model(history);
  control::ActionSpace actions;
  control::MbrlAgent agent(*model, control::RandomShootingConfig{48, 5, 0.99}, actions,
                           env::RewardConfig{}, 21);
  DecisionDataConfig cfg;
  cfg.mc_repeats = 5;
  DecisionDataGenerator generator(history, cfg);
  const DecisionDataset data = generator.generate(agent, 150);

  std::size_t occupied_cold = 0;
  std::size_t occupied_cold_heating = 0;
  std::size_t unoccupied = 0;
  std::size_t unoccupied_setback = 0;
  for (const auto& r : data.records) {
    const auto action = actions.action(r.action_index);
    if (r.input[env::kOccupancy] > 0.5 && r.input[env::kZoneTemp] < 19.5) {
      ++occupied_cold;
      if (action.heating_c >= 19.0) ++occupied_cold_heating;
    }
    if (r.input[env::kOccupancy] <= 0.5) {
      ++unoccupied;
      if (action.heating_c <= 16.0) ++unoccupied_setback;
    }
  }
  if (occupied_cold > 5) {
    EXPECT_GT(static_cast<double>(occupied_cold_heating) / occupied_cold, 0.7);
  }
  ASSERT_GT(unoccupied, 10u);
  EXPECT_GT(static_cast<double>(unoccupied_setback) / unoccupied, 0.7);
}

}  // namespace
}  // namespace verihvac::core
