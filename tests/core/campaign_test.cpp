#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "core_test_utils.hpp"

namespace verihvac::core {
namespace {

/// Toy assets shared across scenarios: the campaign layer's own logic
/// (grid enumeration, per-scenario seeding, aggregation, determinism) is
/// independent of how expensive the assets were to produce.
class CampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto history = testutil::toy_history(1500, 12);
    dyn::DynamicsModelConfig cfg;
    cfg.hidden = {16};
    cfg.trainer.epochs = 80;
    cfg.trainer.adam.learning_rate = 3e-3;
    auto model = std::make_shared<dyn::DynamicsModel>(cfg);
    model->train(history);

    const control::ActionSpace actions;
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{22.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    DecisionDataset data;
    for (int i = 0; i < 40; ++i) {
      const double temp = 14.0 + 0.3 * i;
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
    }

    assets_ = new ScenarioAssets;
    assets_->policy = std::make_shared<const DtPolicy>(DtPolicy::fit(data, actions));
    assets_->model = model;
    assets_->sampler = std::make_shared<AugmentedSampler>(history.policy_inputs(), 0.01);
  }
  static void TearDownTestSuite() {
    delete assets_;
    assets_ = nullptr;
  }

  /// 3 climates × 2 buildings = 6 certified (climate × building) scenarios.
  static CampaignConfig six_scenario_config() {
    CampaignConfig config;
    config.climates = {"Pittsburgh", "Tucson", "NewYork"};
    config.buildings = {{"baseline", 1.0}, {"oversized", 2.0}};
    config.comfort_bands = {{"winter", env::winter_comfort()}};
    config.envelopes = {{"mild", mild_envelope()}};
    config.probabilistic_samples = 120;
    config.reach_states = 8;
    config.reach_horizon = 8;
    return config;
  }

  static AssetProvider toy_provider() {
    return [](const CampaignScenario&) { return *assets_; };
  }

  static VerificationEngine engine_with_threads(std::size_t threads) {
    return VerificationEngine(std::make_shared<const common::TaskPool>(
        common::TaskPoolConfig{threads, /*min_parallel_batch=*/1}));
  }

  static ScenarioAssets* assets_;
};

ScenarioAssets* CampaignTest::assets_ = nullptr;

TEST_F(CampaignTest, EnumeratesTheFullGridInDeterministicOrder) {
  const auto scenarios = enumerate_scenarios(six_scenario_config());
  ASSERT_EQ(scenarios.size(), 6u);
  EXPECT_EQ(scenarios.front().key(), "Pittsburgh/baseline/winter/mild");
  EXPECT_EQ(scenarios[1].key(), "Pittsburgh/oversized/winter/mild");
  EXPECT_EQ(scenarios.back().key(), "NewYork/oversized/winter/mild");
  for (std::size_t i = 0; i < scenarios.size(); ++i) EXPECT_EQ(scenarios[i].index, i);
}

TEST_F(CampaignTest, EmptyGridAxisThrows) {
  CampaignConfig config = six_scenario_config();
  config.climates.clear();
  EXPECT_THROW(enumerate_scenarios(config), std::invalid_argument);
}

TEST_F(CampaignTest, CertifiesSixScenariosInOneInvocation) {
  const auto result =
      run_campaign(six_scenario_config(), engine_with_threads(4), toy_provider());
  ASSERT_EQ(result.rows.size(), 6u);
  for (const CampaignRow& row : result.rows) {
    EXPECT_EQ(row.probabilistic.samples, 120u);
    EXPECT_GE(row.interval.certified_fraction(), 0.0);
    EXPECT_LE(row.interval.certified_fraction(), 1.0);
    EXPECT_EQ(row.tubes, 8u);
    EXPECT_LE(row.tubes_within, row.tubes);
    EXPECT_GE(row.violation_rate(), 0.0);
    EXPECT_LE(row.violation_rate(), 1.0);
  }
  // The table carries one line per scenario plus header/title furniture.
  const std::string table = result.to_table();
  for (const CampaignRow& row : result.rows) {
    EXPECT_NE(table.find(row.scenario.key()), std::string::npos);
  }
}

TEST_F(CampaignTest, TableByteIdenticalAcrossThreadCounts) {
  // The full aggregated artifact — table and CSV — must be byte-identical
  // for VERI_HVAC_THREADS=1 vs 8 pools (mirrors rollout_engine_test).
  const CampaignConfig config = six_scenario_config();
  const auto serial = run_campaign(config, engine_with_threads(1), toy_provider());
  const auto parallel = run_campaign(config, engine_with_threads(8), toy_provider());
  EXPECT_EQ(serial.to_table(), parallel.to_table());
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST_F(CampaignTest, ScenarioSeedsAreIndexStableNotOrderStable) {
  // Dropping a grid axis entry must not change the numbers of scenarios
  // that keep their (climate, building) identity and index-local seed —
  // scenario draws derive from (root seed, index), so the *first* scenario
  // is unchanged when later ones are removed.
  CampaignConfig full = six_scenario_config();
  CampaignConfig reduced = six_scenario_config();
  reduced.climates = {"Pittsburgh"};
  const auto full_run = run_campaign(full, engine_with_threads(4), toy_provider());
  const auto reduced_run = run_campaign(reduced, engine_with_threads(4), toy_provider());
  ASSERT_EQ(reduced_run.rows.size(), 2u);
  EXPECT_EQ(full_run.rows[0].probabilistic.failures,
            reduced_run.rows[0].probabilistic.failures);
  EXPECT_EQ(full_run.rows[1].probabilistic.failures,
            reduced_run.rows[1].probabilistic.failures);
}

TEST_F(CampaignTest, SkippedReachabilityDoesNotClaimTubeCertification) {
  CampaignConfig config = six_scenario_config();
  config.climates = {"Pittsburgh"};
  config.buildings = {{"baseline", 1.0}};
  config.reach_states = 0;  // reachability skipped
  const auto result = run_campaign(config, engine_with_threads(1), toy_provider());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows.front().tubes, 0u);
  EXPECT_TRUE(std::isnan(result.rows.front().tube_within_fraction()));
}

TEST_F(CampaignTest, IncompleteAssetsThrow) {
  CampaignConfig config = six_scenario_config();
  const auto broken = [](const CampaignScenario&) { return ScenarioAssets{}; };
  EXPECT_THROW(run_campaign(config, engine_with_threads(1), broken), std::invalid_argument);
}

TEST_F(CampaignTest, CsvHasHeaderPlusOneLinePerScenario) {
  const auto result =
      run_campaign(six_scenario_config(), engine_with_threads(4), toy_provider());
  const std::string csv = result.to_csv();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + result.rows.size());
  EXPECT_EQ(csv.rfind("scenario,leaves_subject,", 0), 0u);
}

/// End-to-end: the default provider extracts real pipeline artifacts.
/// Scaled down hard via the VERI_HVAC_* knobs; labeled `slow` in CMake.
TEST_F(CampaignTest, PipelineAssetProviderExtractsAndCaches) {
  setenv("VERI_HVAC_COLLECT_EPISODES", "1", 1);
  setenv("VERI_HVAC_EPOCHS", "15", 1);
  setenv("VERI_HVAC_DECISION_POINTS", "60", 1);
  setenv("VERI_HVAC_MC_REPEATS", "2", 1);
  setenv("VERI_HVAC_RS_SAMPLES", "32", 1);
  setenv("VERI_HVAC_RS_HORIZON", "5", 1);
  setenv("VERI_HVAC_VERIFY_SAMPLES", "100", 1);

  CampaignConfig config;
  config.climates = {"Pittsburgh"};
  config.buildings = {{"baseline", 1.0}};
  // Two envelope variants over one extraction: the provider must hit its
  // cache for the second scenario. (The comfort band stays winter — the
  // winter-collected historical distribution has no occupied summer-band
  // states for the Monte-Carlo sampler to accept.)
  config.comfort_bands = {{"winter", env::winter_comfort()}};
  config.envelopes = {{"mild", mild_envelope()}, {"design", DisturbanceBounds{}}};
  config.probabilistic_samples = 60;
  config.reach_states = 4;
  config.reach_horizon = 6;

  const AssetProvider provider = pipeline_asset_provider(config);
  const auto scenarios = enumerate_scenarios(config);
  ASSERT_EQ(scenarios.size(), 2u);
  const ScenarioAssets first = provider(scenarios[0]);
  const ScenarioAssets second = provider(scenarios[1]);
  ASSERT_TRUE(first.policy && first.model && first.sampler);
  // Same (climate × building) -> cached artifacts, not a second pipeline.
  EXPECT_EQ(first.policy.get(), second.policy.get());
  EXPECT_EQ(first.model.get(), second.model.get());

  const auto result = run_campaign(config, engine_with_threads(4), provider);
  EXPECT_EQ(result.rows.size(), 2u);

  unsetenv("VERI_HVAC_COLLECT_EPISODES");
  unsetenv("VERI_HVAC_EPOCHS");
  unsetenv("VERI_HVAC_DECISION_POINTS");
  unsetenv("VERI_HVAC_MC_REPEATS");
  unsetenv("VERI_HVAC_RS_SAMPLES");
  unsetenv("VERI_HVAC_RS_HORIZON");
  unsetenv("VERI_HVAC_VERIFY_SAMPLES");
}

}  // namespace
}  // namespace verihvac::core
