#include "core/policy_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace verihvac::core {
namespace {

DtPolicy make_policy(control::ActionSpaceConfig grid = {}, std::uint64_t seed = 3) {
  control::ActionSpace actions(grid);
  Rng rng(seed);
  DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),  rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return DtPolicy::fit(data, actions);
}

TEST(PolicyIoTest, StreamRoundTripPreservesEveryDecision) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  const DtPolicy reloaded = read_policy(buffer);

  EXPECT_EQ(reloaded.tree().node_count(), original.tree().node_count());
  EXPECT_EQ(reloaded.actions().size(), original.actions().size());
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x = {rng.uniform(5.0, 35.0),  rng.uniform(-20.0, 45.0),
                                   rng.uniform(0.0, 100.0), rng.uniform(0.0, 20.0),
                                   rng.uniform(0.0, 900.0), rng.uniform(0.0, 20.0)};
    const auto a = original.decide(x);
    const auto b = reloaded.decide(x);
    EXPECT_DOUBLE_EQ(a.heating_c, b.heating_c);
    EXPECT_DOUBLE_EQ(a.cooling_c, b.cooling_c);
  }
}

TEST(PolicyIoTest, FileRoundTrip) {
  const DtPolicy original = make_policy();
  const std::string path = ::testing::TempDir() + "/bundle.policy";
  save_policy(original, path);
  const DtPolicy reloaded = load_policy(path);
  EXPECT_EQ(reloaded.tree().node_count(), original.tree().node_count());
}

TEST(PolicyIoTest, NonDefaultActionGridSurvives) {
  control::ActionSpaceConfig grid;
  grid.heat_min = 16;
  grid.heat_max = 20;
  grid.cool_min = 24;
  grid.cool_max = 28;
  const DtPolicy original = make_policy(grid);
  std::stringstream buffer;
  write_policy(original, buffer);
  const DtPolicy reloaded = read_policy(buffer);
  EXPECT_EQ(reloaded.actions().config().heat_min, 16);
  EXPECT_EQ(reloaded.actions().config().cool_max, 28);
  EXPECT_EQ(reloaded.actions().size(), original.actions().size());
}

TEST(PolicyIoTest, RoundTripIsBitStable) {
  // The bundle must survive write -> read -> write byte-identically, and
  // the reloaded policy's interpretable export must match to the last
  // character — the deployment artifact cannot drift through re-serving.
  const DtPolicy original = make_policy();
  std::stringstream first;
  write_policy(original, first);
  const DtPolicy reloaded = read_policy(first);

  EXPECT_EQ(reloaded.to_text(), original.to_text());
  std::stringstream second;
  write_policy(reloaded, second);
  EXPECT_EQ(second.str(), first.str());
}

TEST(PolicyIoTest, RejectsBadHeader) {
  std::stringstream buffer("not-a-policy v9\n");
  EXPECT_THROW(read_policy(buffer), std::runtime_error);
}

TEST(PolicyIoTest, RejectsWrongPolicyVersionLine) {
  // A valid bundle whose policy version line claims v2: the v1 reader
  // must refuse rather than guess at the format.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto pos = text.find("verihvac-policy v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-policy v1").size(), "verihvac-policy v2");
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsWrongEmbeddedTreeVersionLine) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto pos = text.find("verihvac-tree v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-tree v1").size(), "verihvac-tree v7");
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsInvalidActionGrid) {
  // A grid whose decoded action space is empty/contradictory must be
  // rejected by the embedded ActionSpace validation, not silently served.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto line_start = text.find('\n') + 1;
  const auto line_end = text.find('\n', line_start);
  text.replace(line_start, line_end - line_start, "23 15 30 21 1");  // min > max
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::exception);
}

TEST(PolicyIoTest, RejectsTruncatedFile) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_policy(truncated), std::runtime_error);
}

TEST(PolicyIoTest, RejectsActionSpaceTreeMismatch) {
  // Tamper the grid line so the embedded action space decodes to a
  // different size than the tree's class count.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto line_start = text.find('\n') + 1;
  const auto line_end = text.find('\n', line_start);
  text.replace(line_start, line_end - line_start, "15 23 21 29 1");  // one fewer cooling row
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_policy("/nonexistent/policy.file"), std::runtime_error);
}

}  // namespace
}  // namespace verihvac::core
