#include "core/policy_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "envlib/feature_schema.hpp"

namespace verihvac::core {
namespace {

DtPolicy make_policy(control::ActionSpaceConfig grid = {}, std::uint64_t seed = 3) {
  control::ActionSpace actions(grid);
  Rng rng(seed);
  DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),  rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return DtPolicy::fit(data, actions);
}

DtPolicy make_time_aware_policy(std::uint64_t seed = 5) {
  control::ActionSpace actions{control::ActionSpaceConfig{}};
  Rng rng(seed);
  DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0,
                 rng.uniform(-1.0, 1.0),  rng.uniform(-1.0, 1.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return DtPolicy::fit(data, actions, {}, env::time_aware_schema());
}

/// Span (offset, length) of the action-grid line: the line just before the
/// embedded tree block, after the v2 schema block.
std::pair<std::size_t, std::size_t> grid_line_span(const std::string& text) {
  const auto tree_pos = text.find("verihvac-tree");
  EXPECT_NE(tree_pos, std::string::npos);
  const auto line_start = text.rfind('\n', tree_pos - 2) + 1;
  return {line_start, tree_pos - 1 - line_start};
}

/// Span of the persisted schema block (the "schema" header line plus every
/// "feature" line, trailing newline included).
std::pair<std::size_t, std::size_t> schema_block_span(const std::string& text) {
  const auto start = text.find("\nschema ");
  EXPECT_NE(start, std::string::npos);
  const auto last_feature = text.rfind("\nfeature ");
  EXPECT_NE(last_feature, std::string::npos);
  const auto end = text.find('\n', last_feature + 1) + 1;
  return {start + 1, end - (start + 1)};
}

TEST(PolicyIoTest, StreamRoundTripPreservesEveryDecision) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  const DtPolicy reloaded = read_policy(buffer);

  EXPECT_EQ(reloaded.tree().node_count(), original.tree().node_count());
  EXPECT_EQ(reloaded.actions().size(), original.actions().size());
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x = {rng.uniform(5.0, 35.0),  rng.uniform(-20.0, 45.0),
                                   rng.uniform(0.0, 100.0), rng.uniform(0.0, 20.0),
                                   rng.uniform(0.0, 900.0), rng.uniform(0.0, 20.0)};
    const auto a = original.decide(x);
    const auto b = reloaded.decide(x);
    EXPECT_DOUBLE_EQ(a.heating_c, b.heating_c);
    EXPECT_DOUBLE_EQ(a.cooling_c, b.cooling_c);
  }
}

TEST(PolicyIoTest, FileRoundTrip) {
  const DtPolicy original = make_policy();
  const std::string path = ::testing::TempDir() + "/bundle.policy";
  save_policy(original, path);
  const DtPolicy reloaded = load_policy(path);
  EXPECT_EQ(reloaded.tree().node_count(), original.tree().node_count());
}

TEST(PolicyIoTest, NonDefaultActionGridSurvives) {
  control::ActionSpaceConfig grid;
  grid.heat_min = 16;
  grid.heat_max = 20;
  grid.cool_min = 24;
  grid.cool_max = 28;
  const DtPolicy original = make_policy(grid);
  std::stringstream buffer;
  write_policy(original, buffer);
  const DtPolicy reloaded = read_policy(buffer);
  EXPECT_EQ(reloaded.actions().config().heat_min, 16);
  EXPECT_EQ(reloaded.actions().config().cool_max, 28);
  EXPECT_EQ(reloaded.actions().size(), original.actions().size());
}

TEST(PolicyIoTest, RoundTripIsBitStable) {
  // The bundle must survive write -> read -> write byte-identically, and
  // the reloaded policy's interpretable export must match to the last
  // character — the deployment artifact cannot drift through re-serving.
  const DtPolicy original = make_policy();
  std::stringstream first;
  write_policy(original, first);
  const DtPolicy reloaded = read_policy(first);

  EXPECT_EQ(reloaded.to_text(), original.to_text());
  std::stringstream second;
  write_policy(reloaded, second);
  EXPECT_EQ(second.str(), first.str());
}

TEST(PolicyIoTest, SchemaIsPersistedInBundle) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("verihvac-policy v3\nfingerprint "), std::string::npos);
  EXPECT_NE(text.find("\nschema baseline 6\n"), std::string::npos);
  EXPECT_NE(text.find("feature zone_temp_c degC state zone_temp"), std::string::npos);
  std::stringstream in(text);
  EXPECT_EQ(read_policy(in).schema(), env::baseline_schema());
}

TEST(PolicyIoTest, TimeAwareSchemaRoundTrip) {
  // A 9-dim time-aware bundle must round-trip byte-identically and come
  // back with the same schema object — heterogeneous shapes in one
  // registry depend on the bundle carrying its own layout.
  const DtPolicy original = make_time_aware_policy();
  std::stringstream first;
  write_policy(original, first);
  const DtPolicy reloaded = read_policy(first);

  EXPECT_EQ(reloaded.schema(), env::time_aware_schema());
  EXPECT_EQ(reloaded.schema().dims(), 9u);
  std::stringstream second;
  write_policy(reloaded, second);
  EXPECT_EQ(second.str(), first.str());

  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(9);
    for (double& v : x) v = rng.uniform(-10.0, 40.0);
    const auto a = original.decide(x);
    const auto b = reloaded.decide(x);
    EXPECT_DOUBLE_EQ(a.heating_c, b.heating_c);
    EXPECT_DOUBLE_EQ(a.cooling_c, b.cooling_c);
  }
}

/// Deletes the "fingerprint <hex>" line a v3 bundle carries, for building
/// the legacy v1/v2 texts the reader must keep accepting.
void erase_fingerprint_line(std::string& text) {
  const auto start = text.find("\nfingerprint ");
  ASSERT_NE(start, std::string::npos);
  const auto end = text.find('\n', start + 1);
  text.erase(start + 1, end - start);
}

TEST(PolicyIoTest, V1BundleLoadsAsBaselineSchema) {
  // v1 bundles predate persisted schemas and fingerprints: header line
  // then action grid, nothing else. The reader must treat them as the
  // implicit baseline 6-dim layout and make every original decision
  // unchanged.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto [schema_start, schema_len] = schema_block_span(text);
  text.erase(schema_start, schema_len);
  erase_fingerprint_line(text);
  const auto pos = text.find("verihvac-policy v3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-policy v3").size(), "verihvac-policy v1");

  std::stringstream v1(text);
  const DtPolicy reloaded = read_policy(v1);
  EXPECT_EQ(reloaded.schema(), env::baseline_schema());
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.uniform(-10.0, 40.0);
    const auto a = original.decide(x);
    const auto b = reloaded.decide(x);
    EXPECT_DOUBLE_EQ(a.heating_c, b.heating_c);
    EXPECT_DOUBLE_EQ(a.cooling_c, b.cooling_c);
  }
}

TEST(PolicyIoTest, V2BundleLoadsWithSchemaAndNoFingerprintCheck) {
  // v2 bundles carry the schema block but predate the fingerprint line.
  // They must keep loading with the persisted schema intact.
  const DtPolicy original = make_time_aware_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  erase_fingerprint_line(text);
  const auto pos = text.find("verihvac-policy v3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-policy v3").size(), "verihvac-policy v2");

  std::stringstream v2(text);
  const DtPolicy reloaded = read_policy(v2);
  EXPECT_EQ(reloaded.schema(), env::time_aware_schema());
  EXPECT_EQ(reloaded.tree().node_count(), original.tree().node_count());
}

TEST(PolicyIoTest, RejectsSchemaTreeDimsMismatch) {
  // Splice the 9-dim time-aware schema block into a bundle whose tree was
  // fit on 6 features: the reader must refuse rather than serve a policy
  // that would index past its inputs.
  const DtPolicy baseline = make_policy();
  const DtPolicy aware = make_time_aware_policy();
  std::stringstream base_buf;
  std::stringstream aware_buf;
  write_policy(baseline, base_buf);
  write_policy(aware, aware_buf);
  std::string text = base_buf.str();
  const std::string aware_text = aware_buf.str();
  const auto [dst_start, dst_len] = schema_block_span(text);
  const auto [src_start, src_len] = schema_block_span(aware_text);
  text.replace(dst_start, dst_len, aware_text.substr(src_start, src_len));
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsBadHeader) {
  std::stringstream buffer("not-a-policy v9\n");
  EXPECT_THROW(read_policy(buffer), std::runtime_error);
}

TEST(PolicyIoTest, RejectsWrongPolicyVersionLine) {
  // A valid bundle whose policy version line claims an unknown v9: the
  // reader must refuse rather than guess at the format.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto pos = text.find("verihvac-policy v3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-policy v3").size(), "verihvac-policy v9");
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsTamperedFingerprintLine) {
  // Flipping one hex digit of the stated fingerprint must fail the load:
  // the reader recomputes the content hash and compares.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto pos = text.find("fingerprint ");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + std::string("fingerprint ").size()];
  digit = digit == '0' ? '1' : '0';
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsContentTamperViaFingerprint) {
  // Alter bundle *content* that every legacy structural check would accept
  // (a schema feature bound): the v3 fingerprint must still catch it, so a
  // bit-rotted or hand-edited bundle cannot masquerade as the certified
  // artifact.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto line = text.find("feature zone_temp_c ");
  ASSERT_NE(line, std::string::npos);
  const auto eol = text.find('\n', line);
  const auto space = text.rfind(' ', eol);  // start of the <hi> bound token
  text.replace(space + 1, eol - space - 1, "99");
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsWrongEmbeddedTreeVersionLine) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto pos = text.find("verihvac-tree v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("verihvac-tree v1").size(), "verihvac-tree v7");
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, RejectsInvalidActionGrid) {
  // A grid whose decoded action space is empty/contradictory must be
  // rejected by the embedded ActionSpace validation, not silently served.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto [grid_start, grid_len] = grid_line_span(text);
  text.replace(grid_start, grid_len, "23 15 30 21 1");  // min > max
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::exception);
}

TEST(PolicyIoTest, RejectsTruncatedFile) {
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_policy(truncated), std::runtime_error);
}

TEST(PolicyIoTest, RejectsActionSpaceTreeMismatch) {
  // Tamper the grid line so the embedded action space decodes to a
  // different size than the tree's class count.
  const DtPolicy original = make_policy();
  std::stringstream buffer;
  write_policy(original, buffer);
  std::string text = buffer.str();
  const auto [grid_start, grid_len] = grid_line_span(text);
  text.replace(grid_start, grid_len, "15 23 21 29 1");  // one fewer cooling row
  std::stringstream tampered(text);
  EXPECT_THROW(read_policy(tampered), std::runtime_error);
}

TEST(PolicyIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_policy("/nonexistent/policy.file"), std::runtime_error);
}

}  // namespace
}  // namespace verihvac::core
