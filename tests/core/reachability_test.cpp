#include "core/reachability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/core_test_utils.hpp"

namespace verihvac::core {
namespace {

using testutil::toy_history;
using testutil::toy_model;

class ReachabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = toy_history(1200, 3);
    model_ = toy_model(history_);

    control::ActionSpace actions;
    DecisionDataset data;
    Rng rng(4);
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{21.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    for (int i = 0; i < 300; ++i) {
      std::vector<double> x = {rng.uniform(16.0, 26.0), rng.uniform(-5.0, 10.0), 60.0, 3.0,
                               0.0, rng.bernoulli(0.5) ? 11.0 : 0.0};
      const std::size_t label = x[env::kOccupancy] > 0.5 ? hold : setback;
      data.records.push_back({std::move(x), label});
    }
    policy_ = std::make_unique<DtPolicy>(DtPolicy::fit(data, actions));
  }

  dyn::TransitionDataset history_;
  std::shared_ptr<dyn::DynamicsModel> model_;
  std::unique_ptr<DtPolicy> policy_;
};

TEST_F(ReachabilityTest, TubeHasHorizonPlusOneStates) {
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  const ReachabilityResult result = reach_tube(*policy_, *model_, x0, {}, 10);
  EXPECT_EQ(result.zone_temps.size(), 11u);
  EXPECT_DOUBLE_EQ(result.zone_temps.front(), 21.0);
}

TEST_F(ReachabilityTest, MinMaxEnvelopeIsConsistent) {
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  const ReachabilityResult result = reach_tube(*policy_, *model_, x0, {}, 16);
  for (double t : result.zone_temps) {
    EXPECT_GE(t, result.min_temp);
    EXPECT_LE(t, result.max_temp);
  }
}

TEST_F(ReachabilityTest, OccupiedComfortStartStaysNearComfort) {
  // A comfort-holding policy from a mid-comfort occupied start should not
  // leave a generous band over 5 hours.
  const std::vector<double> x0 = {21.5, 0.0, 60.0, 3.0, 0.0, 11.0};
  ReachabilityResult result = reach_tube(*policy_, *model_, x0, {}, 20);
  check_within(result, 19.0, 24.5);
  EXPECT_TRUE(result.within) << "[" << result.min_temp << ", " << result.max_temp << "]";
}

TEST_F(ReachabilityTest, UnoccupiedStartDriftsDown) {
  // Setback + cold outdoors: the tube should sink (building cools).
  const std::vector<double> x0 = {21.0, -5.0, 60.0, 3.0, 0.0, 0.0};
  const ReachabilityResult result = reach_tube(*policy_, *model_, x0, {}, 20);
  EXPECT_LT(result.zone_temps.back(), 21.0);
}

TEST_F(ReachabilityTest, DisturbanceSequenceIsApplied) {
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  env::Disturbance warm;
  warm.weather.outdoor_temp_c = 15.0;
  warm.occupants = 11.0;
  env::Disturbance cold;
  cold.weather.outdoor_temp_c = -15.0;
  cold.occupants = 11.0;
  const auto warm_tube =
      reach_tube(*policy_, *model_, x0, std::vector<env::Disturbance>(20, warm), 20);
  const auto cold_tube =
      reach_tube(*policy_, *model_, x0, std::vector<env::Disturbance>(20, cold), 20);
  EXPECT_GT(warm_tube.zone_temps.back(), cold_tube.zone_temps.back());
}

TEST_F(ReachabilityTest, FirstTransitionUsesFirstDisturbanceEntry) {
  // Contract: disturbances[k] are the exogenous inputs at step k+1 and
  // drive the k-th transition. Two sequences differing ONLY in entry 0
  // must therefore already diverge at zone_temps[1]; the pre-fix loop
  // applied d[0] after the first prediction, so the tubes agreed at step 1
  // (both transitions wrongly used x0's persisted disturbances).
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  env::Disturbance base;
  base.weather.outdoor_temp_c = 0.0;
  base.weather.humidity_pct = 60.0;
  base.weather.wind_mps = 3.0;
  base.occupants = 11.0;
  std::vector<env::Disturbance> warm_first(10, base);
  std::vector<env::Disturbance> cold_first(10, base);
  warm_first[0].weather.outdoor_temp_c = 15.0;
  cold_first[0].weather.outdoor_temp_c = -15.0;
  const auto warm = reach_tube(*policy_, *model_, x0, warm_first, 10);
  const auto cold = reach_tube(*policy_, *model_, x0, cold_first, 10);
  EXPECT_GT(warm.zone_temps[1], cold.zone_temps[1]);
}

TEST_F(ReachabilityTest, LastDisturbanceEntryDrivesFinalTransition) {
  // The final entry disturbances[horizon-1] must not be dropped: sequences
  // differing only there diverge at the last state.
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  env::Disturbance base;
  base.weather.outdoor_temp_c = 0.0;
  base.weather.humidity_pct = 60.0;
  base.weather.wind_mps = 3.0;
  base.occupants = 11.0;
  std::vector<env::Disturbance> warm_last(10, base);
  std::vector<env::Disturbance> cold_last(10, base);
  warm_last.back().weather.outdoor_temp_c = 15.0;
  cold_last.back().weather.outdoor_temp_c = -15.0;
  const auto warm = reach_tube(*policy_, *model_, x0, warm_last, 10);
  const auto cold = reach_tube(*policy_, *model_, x0, cold_last, 10);
  for (std::size_t k = 0; k + 1 < warm.zone_temps.size(); ++k) {
    EXPECT_DOUBLE_EQ(warm.zone_temps[k], cold.zone_temps[k]) << "step " << k;
  }
  EXPECT_GT(warm.zone_temps.back(), cold.zone_temps.back());
}

TEST_F(ReachabilityTest, ScratchVariantMatchesConvenienceOverload) {
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  env::Disturbance d;
  d.weather.outdoor_temp_c = 5.0;
  d.occupants = 11.0;
  const std::vector<env::Disturbance> forecast(12, d);
  dyn::PredictScratch scratch;
  const auto plain = reach_tube(*policy_, *model_, x0, forecast, 12);
  const auto scratched = reach_tube(*policy_, *model_, x0, forecast, 12, scratch);
  ASSERT_EQ(plain.zone_temps.size(), scratched.zone_temps.size());
  for (std::size_t k = 0; k < plain.zone_temps.size(); ++k) {
    EXPECT_DOUBLE_EQ(plain.zone_temps[k], scratched.zone_temps[k]);
  }
}

TEST_F(ReachabilityTest, NanStateMakesTubeUnsafe) {
  // A diverging model produces NaN zone temperatures; NaN slips through
  // min_element/max_element ordering, so the envelope must poison instead.
  std::vector<double> x0 = {std::numeric_limits<double>::quiet_NaN(), 0.0, 60.0, 3.0,
                            0.0, 11.0};
  ReachabilityResult result = reach_tube(*policy_, *model_, x0, {}, 5);
  EXPECT_TRUE(std::isnan(result.min_temp));
  EXPECT_TRUE(std::isnan(result.max_temp));
  check_within(result, -1000.0, 1000.0);  // any finite band
  EXPECT_FALSE(result.within);
}

TEST_F(ReachabilityTest, CheckWithinRejectsNanEvenWithFiniteEnvelope) {
  // Manually assembled result whose envelope fields hide the NaN state:
  // check_within must still report the tube unsafe.
  ReachabilityResult r;
  r.zone_temps = {21.0, std::numeric_limits<double>::quiet_NaN(), 21.5};
  r.min_temp = 21.0;
  r.max_temp = 21.5;
  check_within(r, 20.0, 23.5);
  EXPECT_FALSE(r.within);
}

TEST_F(ReachabilityTest, ShortDisturbanceSequenceExtends) {
  const std::vector<double> x0 = {21.0, 0.0, 60.0, 3.0, 0.0, 11.0};
  env::Disturbance d;
  d.weather.outdoor_temp_c = 5.0;
  d.occupants = 11.0;
  EXPECT_NO_THROW(reach_tube(*policy_, *model_, x0, {d}, 10));
}

TEST_F(ReachabilityTest, WrongInputDimensionThrows) {
  EXPECT_THROW(reach_tube(*policy_, *model_, {1.0, 2.0}, {}, 5), std::invalid_argument);
}

TEST_F(ReachabilityTest, CheckWithinFlagsBothSides) {
  ReachabilityResult r;
  r.zone_temps = {20.0, 21.0};
  r.min_temp = 20.0;
  r.max_temp = 21.0;
  check_within(r, 20.0, 23.5);
  EXPECT_TRUE(r.within);
  check_within(r, 20.5, 23.5);
  EXPECT_FALSE(r.within);
  check_within(r, 19.0, 20.5);
  EXPECT_FALSE(r.within);
}

}  // namespace
}  // namespace verihvac::core
