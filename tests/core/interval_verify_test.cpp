#include "core/interval_verify.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core_test_utils.hpp"

namespace verihvac::core {
namespace {

class IntervalVerifyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new dyn::TransitionDataset(testutil::toy_history(1500, 12));
    // A *single* hidden layer: IBP looseness compounds per ReLU layer, and
    // one layer keeps the relaxation tight enough to certify — the
    // "verifiability favours shallow dynamics models" trade-off recorded
    // in DESIGN.md and swept by bench/ablation_interval.
    dyn::DynamicsModelConfig cfg;
    cfg.hidden = {16};
    cfg.trainer.epochs = 80;
    cfg.trainer.adam.learning_rate = 3e-3;
    model_ = std::make_shared<dyn::DynamicsModel>(cfg);
    model_->train(*history_);
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
    model_.reset();
  }

  /// A hold-the-comfort-zone policy: every occupied in-comfort input maps
  /// to a hold action with real margin on both comfort edges (heating 22
  /// recovers a 20.0 degC zone decisively; cooling 23 caps the top).
  static DtPolicy hold_policy() {
    const control::ActionSpace actions;
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{22.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    DecisionDataset data;
    for (int i = 0; i < 40; ++i) {
      const double temp = 14.0 + 0.3 * i;
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
    }
    return DtPolicy::fit(data, actions);
  }

  static VerificationCriteria winter() {
    VerificationCriteria c;
    c.comfort = env::winter_comfort();
    return c;
  }

  static dyn::TransitionDataset* history_;
  static std::shared_ptr<dyn::DynamicsModel> model_;
};

dyn::TransitionDataset* IntervalVerifyTest::history_ = nullptr;
std::shared_ptr<dyn::DynamicsModel> IntervalVerifyTest::model_;

TEST_F(IntervalVerifyTest, NextStateRejectsBadBoxes) {
  EXPECT_THROW(interval_next_state(*model_, Box(6)), std::invalid_argument);
  Box unbounded(dyn::kModelInputDims);  // all dims infinite
  EXPECT_THROW(interval_next_state(*model_, unbounded), std::invalid_argument);
  Box empty_dim(dyn::kModelInputDims);
  for (std::size_t d = 0; d < dyn::kModelInputDims; ++d) {
    empty_dim.clip(d, Interval::bounded(0.0, 1.0));
  }
  empty_dim.clip(0, Interval::bounded(2.0, 3.0));  // empty intersection
  EXPECT_THROW(interval_next_state(*model_, empty_dim), std::invalid_argument);
}

TEST_F(IntervalVerifyTest, UntrainedModelThrows) {
  dyn::DynamicsModel untrained;
  Box box(dyn::kModelInputDims);
  for (std::size_t d = 0; d < dyn::kModelInputDims; ++d) {
    box.clip(d, Interval::bounded(0.0, 1.0));
  }
  EXPECT_THROW(interval_next_state(untrained, box), std::logic_error);
}

Box operating_box(double s_lo, double s_hi, double heat_sp, double cool_sp) {
  Box box(dyn::kModelInputDims);
  box.clip(env::kZoneTemp, Interval::bounded(s_lo, s_hi));
  box.clip(env::kOutdoorTemp, Interval::bounded(-5.0, 5.0));
  box.clip(env::kHumidity, Interval::bounded(40.0, 80.0));
  box.clip(env::kWind, Interval::bounded(0.0, 8.0));
  box.clip(env::kSolar, Interval::bounded(0.0, 300.0));
  box.clip(env::kOccupancy, Interval::bounded(0.5, 12.0));
  box.clip(dyn::kHeatSpIndex, Interval::bounded(heat_sp, heat_sp));
  box.clip(dyn::kCoolSpIndex, Interval::bounded(cool_sp, cool_sp));
  return box;
}

TEST_F(IntervalVerifyTest, DegenerateBoxMatchesPointPrediction) {
  Box box = operating_box(21.0, 21.0, 21.0, 23.0);
  for (std::size_t d : {env::kOutdoorTemp, env::kHumidity, env::kWind, env::kSolar,
                        env::kOccupancy}) {
    const double mid = 0.5 * (box[d].lo + box[d].hi);
    box.clip(d, Interval::bounded(mid, mid));
  }
  const Interval range = interval_next_state(*model_, box);
  std::vector<double> x(dyn::kModelInputDims);
  for (std::size_t d = 0; d < dyn::kModelInputDims; ++d) x[d] = box[d].lo;
  const double point = model_->predict_raw(x);
  EXPECT_NEAR(range.lo, point, 1e-9);
  EXPECT_NEAR(range.hi, point, 1e-9);
}

class IntervalSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSoundness, SampledNextStatesLieWithinInterval) {
  auto history = testutil::toy_history(1500, 12);
  auto model = testutil::toy_model(history);
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Box box(dyn::kModelInputDims);
    const double s = rng.uniform(15.0, 26.0);
    box.clip(env::kZoneTemp, Interval::bounded(s, s + 1.0));
    box.clip(env::kOutdoorTemp, Interval::bounded(-10.0, 10.0));
    box.clip(env::kHumidity, Interval::bounded(30.0, 90.0));
    box.clip(env::kWind, Interval::bounded(0.0, 10.0));
    box.clip(env::kSolar, Interval::bounded(0.0, 400.0));
    box.clip(env::kOccupancy, Interval::bounded(0.0, 12.0));
    const double heat = static_cast<double>(rng.uniform_int(15, 23));
    box.clip(dyn::kHeatSpIndex, Interval::bounded(heat, heat));
    const double cool = static_cast<double>(rng.uniform_int(23, 30));
    box.clip(dyn::kCoolSpIndex, Interval::bounded(cool, cool));

    const Interval range = interval_next_state(*model, box);
    for (int i = 0; i < 60; ++i) {
      std::vector<double> x(dyn::kModelInputDims);
      for (std::size_t d = 0; d < dyn::kModelInputDims; ++d) {
        x[d] = rng.uniform(box[d].lo, box[d].hi);
      }
      const double next = model->predict_raw(x);
      EXPECT_GE(next, range.lo - 1e-9);
      EXPECT_LE(next, range.hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness, ::testing::Values(7u, 23u));

TEST(SplitIntervalTest, NonDivisorWidthTilesExactly) {
  // 1.2 / 0.5 -> 3 cells; the remainder must neither vanish nor produce a
  // zero-width trailing cell.
  const auto cells = split_interval(Interval::bounded(0.0, 1.2), 0.5);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_DOUBLE_EQ(cells.front().lo, 0.0);
  EXPECT_DOUBLE_EQ(cells.back().hi, 1.2);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    EXPECT_GT(cells[k].hi, cells[k].lo) << "cell " << k;
    EXPECT_LE(cells[k].hi - cells[k].lo, 0.5 + 1e-12);
    if (k + 1 < cells.size()) EXPECT_DOUBLE_EQ(cells[k].hi, cells[k + 1].lo);
  }
}

TEST(SplitIntervalTest, FinalBoundaryIsExactUnderLargeOffsets) {
  // lo + width*(k+1)/n can round an ulp short of hi at large magnitudes; a
  // dropped top sliver would be an unsound gap in the certificate.
  const double lo = 1.0e15;
  const double hi = lo + 1.0;
  const auto cells = split_interval(Interval::bounded(lo, hi), 0.3);
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells.front().lo, lo);
  EXPECT_EQ(cells.back().hi, hi);  // bit-exact, not merely approximate
  for (std::size_t k = 0; k + 1 < cells.size(); ++k) {
    EXPECT_EQ(cells[k].hi, cells[k + 1].lo);
    EXPECT_GT(cells[k].hi, cells[k].lo);
  }
}

TEST(SplitIntervalTest, ComfortBandNonDivisorCase) {
  // The default zone slicing over the winter band: 3.5 / 0.5 = 7 exactly,
  // but 3.5 / 1.0 leaves a half-width remainder cell.
  const auto cells = split_interval(Interval::bounded(20.0, 23.5), 1.0);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_DOUBLE_EQ(cells.front().lo, 20.0);
  EXPECT_DOUBLE_EQ(cells.back().hi, 23.5);
  double covered = 0.0;
  for (const Interval& cell : cells) {
    EXPECT_GT(cell.hi, cell.lo);
    covered += cell.hi - cell.lo;
  }
  EXPECT_NEAR(covered, 3.5, 1e-12);
}

TEST(SplitIntervalTest, DegenerateIntervalYieldsPointCell) {
  const auto cells = split_interval(Interval::bounded(21.0, 21.0), 0.5);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells.front().lo, 21.0);
  EXPECT_DOUBLE_EQ(cells.front().hi, 21.0);
}

TEST_F(IntervalVerifyTest, ScratchVariantMatchesAllocatingPath) {
  // One scratch reused across differently shaped queries must reproduce
  // the allocating path bit-for-bit (the parallel fan-out reuses one
  // scratch per worker across many cells).
  IntervalScratch scratch;
  for (double s : {20.0, 21.0, 22.5}) {
    const Box box = operating_box(s, s + 0.5, 21.0, 23.0);
    const Interval fresh = interval_next_state(*model_, box);
    const Interval reused = interval_next_state(*model_, box, scratch);
    EXPECT_EQ(fresh.lo, reused.lo);
    EXPECT_EQ(fresh.hi, reused.hi);
  }
}

TEST_F(IntervalVerifyTest, ReportCountsAreConsistent) {
  const DtPolicy policy = hold_policy();
  const IntervalReport report = verify_interval_one_step(policy, *model_, winter());
  EXPECT_EQ(report.leaves_total, policy.tree().leaf_count());
  EXPECT_LE(report.leaves_subject, report.leaves_total);
  EXPECT_LE(report.leaves_certified, report.leaves_subject);
  EXPECT_EQ(report.results.size(), report.leaves_subject);
  EXPECT_GE(report.certified_fraction(), 0.0);
  EXPECT_LE(report.certified_fraction(), 1.0);
}

TEST_F(IntervalVerifyTest, TightClimateEnvelopeCertifiesHoldPolicy) {
  // Over a narrow, mild envelope the toy plant under a hold-21/23 action
  // provably keeps an in-comfort zone in comfort; IBP must certify the
  // subject leaves. (The paper-scale envelope is wider and certification
  // legitimately abstains — see the width sweep below.)
  const DtPolicy policy = hold_policy();
  DisturbanceBounds tight;
  tight.outdoor = Interval::bounded(-1.0, 1.0);
  tight.humidity = Interval::bounded(48.0, 52.0);
  tight.wind = Interval::bounded(2.5, 3.5);
  tight.solar = Interval::bounded(90.0, 110.0);
  tight.occupancy = Interval::bounded(10.0, 12.0);
  IntervalVerifyConfig fine;
  fine.zone_slice_c = 0.1;
  const IntervalReport report =
      verify_interval_one_step(policy, *model_, winter(), tight, fine);
  ASSERT_GT(report.leaves_subject, 0u);
  EXPECT_EQ(report.leaves_certified, report.leaves_subject);
  // Input splitting really happened and the union image is recorded.
  for (const auto& r : report.results) {
    EXPECT_GT(r.cells, 1u);
    EXPECT_EQ(r.cells_certified, r.cells);
    EXPECT_GE(r.next_state.lo, winter().comfort.lo);
    EXPECT_LE(r.next_state.hi, winter().comfort.hi);
  }
}

TEST_F(IntervalVerifyTest, CertifiedFractionShrinksWithEnvelopeWidth) {
  const DtPolicy policy = hold_policy();
  double prev = 2.0;
  for (double width : {1.0, 10.0, 30.0}) {
    DisturbanceBounds env_bounds;
    env_bounds.outdoor = Interval::bounded(-width, width);
    const IntervalReport report =
        verify_interval_one_step(policy, *model_, winter(), env_bounds);
    EXPECT_LE(report.certified_fraction(), prev + 1e-12);
    prev = report.certified_fraction();
  }
}

TEST_F(IntervalVerifyTest, UnoccupiedOnlyLeavesAreExempt) {
  // A policy whose every leaf lies in occupancy <= 0.5 must yield zero
  // subject leaves (criterion #1 guards occupied hours).
  const control::ActionSpace actions;
  DecisionDataset data;
  const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  for (int i = 0; i < 20; ++i) {
    data.records.push_back({{15.0 + 0.5 * i, 0.0, 50.0, 3.0, 0.0, 0.0}, setback});
  }
  DtPolicy policy = DtPolicy::fit(data, actions);
  // Constrain occupancy away: the single-leaf tree covers all occupancies,
  // so instead check with an occupancy envelope excluded by clipping.
  DisturbanceBounds bounds;
  bounds.occupancy = Interval::bounded(0.0, 0.4);  // occupied region excluded
  const IntervalReport report = verify_interval_one_step(policy, *model_, winter(), bounds);
  EXPECT_EQ(report.leaves_subject, 0u);
  EXPECT_DOUBLE_EQ(report.certified_fraction(), 1.0);
}

}  // namespace
}  // namespace verihvac::core
