// Shared fixtures for the core-module tests: a fast analytic "toy plant",
// synthetic historical datasets, and a cheaply trained dynamics model, so
// the §3.2/§3.3 machinery can be exercised without full-scale training.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "dynamics/dataset.hpp"
#include "dynamics/dynamics_model.hpp"

namespace verihvac::core::testutil {

inline double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  // Balanced so a comfort-range heating setpoint can actually hold the zone
  // in the comfort band against winter conduction (droop < 1 degC).
  const double t = x[env::kZoneTemp];
  double dt = 0.02 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.6 * std::min(a.heating_c - t, 3.0);
  if (t > a.cooling_c) dt -= 0.5 * std::min(t - a.cooling_c, 3.0);
  dt += 0.01 * x[env::kOccupancy];
  return t + dt;
}

/// Historical dataset shaped like a real BMS log: daily occupancy pattern,
/// correlated weather, mixed exploration actions. Episode-ordered so
/// forecast_from() continuations are meaningful.
inline dyn::TransitionDataset toy_history(std::size_t steps, std::uint64_t seed) {
  Rng rng(seed);
  dyn::TransitionDataset data;
  double zone_temp = 20.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double hour = static_cast<double>(i % 96) / 4.0;
    const bool occupied = hour >= 8.0 && hour < 20.0;
    dyn::Transition t;
    t.input = {zone_temp,
               -2.0 + 4.0 * std::sin(hour / 24.0 * 6.283) + rng.normal(0.0, 1.5),
               65.0 + rng.normal(0.0, 8.0),
               3.0 + std::abs(rng.normal(0.0, 1.5)),
               (hour > 8 && hour < 17) ? rng.uniform(50.0, 350.0) : 0.0,
               occupied ? 11.0 : 0.0};
    if (rng.bernoulli(0.35)) {
      t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
      t.action.cooling_c = static_cast<double>(
          rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
    } else {
      t.action = occupied ? sim::SetpointPair{21.0, 23.5} : sim::SetpointPair{15.0, 30.0};
    }
    t.next_zone_temp = toy_plant(t.input, t.action);
    data.add(t);
    zone_temp = t.next_zone_temp;
  }
  return data;
}

/// A dynamics model trained quickly on the toy history.
inline std::shared_ptr<dyn::DynamicsModel> toy_model(const dyn::TransitionDataset& data) {
  dyn::DynamicsModelConfig cfg;
  cfg.hidden = {24, 24};
  cfg.trainer.epochs = 50;
  cfg.trainer.adam.learning_rate = 3e-3;
  auto model = std::make_shared<dyn::DynamicsModel>(cfg);
  model->train(data);
  return model;
}

}  // namespace verihvac::core::testutil
