// Boundary refinement in Algorithm 1 (DESIGN.md §5.8): straddling leaves
// are split at the comfort boundaries / occupancy divide before
// correction, so only the genuinely-subject region is edited.
#include <gtest/gtest.h>

#include "core/dt_policy.hpp"
#include "core/verification.hpp"

namespace verihvac::core {
namespace {

/// A decision dataset whose CART tree has one leaf covering the whole
/// zone-temperature axis for each occupancy regime:
///   occupied  -> "hold 22" (heat 22 / cool 22)
///   unoccupied -> full setback (15 / 30)
/// Neither leaf splits on zone temperature, so both straddle the comfort
/// boundaries.
DecisionDataset two_leaf_dataset(const control::ActionSpace& actions) {
  const std::size_t hold = actions.nearest_index(sim::SetpointPair{22.0, 22.0});
  const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  DecisionDataset data;
  for (int i = 0; i < 40; ++i) {
    const double temp = 14.0 + 0.3 * i;  // 14 .. 26 degC
    data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
    data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
  }
  return data;
}

VerificationCriteria winter_criteria() {
  VerificationCriteria c;
  c.comfort = env::winter_comfort();  // [20, 23.5]
  return c;
}

TEST(RefinementTest, PreservesPolicyFunctionBeforeCorrection) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  const DtPolicy original = policy;

  VerificationCriteria criteria = winter_criteria();
  // Refine but do NOT correct: the function must be unchanged.
  verify_formal(policy, criteria, /*correct=*/false);
  for (double temp = 12.0; temp <= 28.0; temp += 0.25) {
    for (double occ : {0.0, 11.0}) {
      const std::vector<double> x = {temp, 0.0, 50.0, 3.0, 100.0, occ};
      const auto a = policy.decide(x);
      const auto b = original.decide(x);
      EXPECT_DOUBLE_EQ(a.heating_c, b.heating_c);
      EXPECT_DOUBLE_EQ(a.cooling_c, b.cooling_c);
    }
  }
  EXPECT_GT(policy.tree().node_count(), original.tree().node_count());
}

TEST(RefinementTest, CorrectionKeepsUnoccupiedSetback) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  verify_formal(policy, winter_criteria(), /*correct=*/true);

  // Unoccupied cold input: deep setback must survive (exempt from #3).
  const auto night = policy.decide({16.0, -5.0, 50.0, 3.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(night.heating_c, 15.0);
  EXPECT_DOUBLE_EQ(night.cooling_c, 30.0);
}

TEST(RefinementTest, CorrectionKeepsInComfortOccupiedBehaviour) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  verify_formal(policy, winter_criteria(), /*correct=*/true);

  // Occupied in-comfort input: the original "hold 22" leaf behaviour
  // stays (22, 22) because only the out-of-comfort side was corrected.
  const auto mid = policy.decide({21.5, 0.0, 50.0, 3.0, 100.0, 11.0});
  EXPECT_DOUBLE_EQ(mid.heating_c, 22.0);
  EXPECT_DOUBLE_EQ(mid.cooling_c, 22.0);
}

TEST(RefinementTest, CorrectionFixesOccupiedTooWarmSide) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  const VerificationCriteria criteria = winter_criteria();
  const FormalReport report = verify_formal(policy, criteria, /*correct=*/true);

  // The occupied "hold 22" leaf passes after refinement (cooling 22 <=
  // 23.5 satisfies #2 on its warm side; heating 22 >= 20 satisfies #3 on
  // its cold side). What *does* violate is the setback leaf's phantom
  // semi-occupied band: CART split occupancy at 5.5 (midpoint of the 0/11
  // data), so inputs with occupancy in (0.5, 5.5] — never seen in the
  // data — still reach the (15, 30) setback. The verifier is conservative
  // over the whole input space, flags that band under both criteria
  // (cooling 30 > 23.5 too-warm side, heating 15 < 20 too-cold side) and
  // corrects it. This is Algorithm 1 working as specified: unverified
  // generalization gaps get a safe default.
  EXPECT_EQ(report.violations_crit2, 1u);
  EXPECT_EQ(report.violations_crit3, 1u);
  EXPECT_EQ(report.corrected_crit2, 1u);
  EXPECT_EQ(report.corrected_crit3, 1u);

  // After correction, re-verification is clean.
  const FormalReport again = verify_formal(policy, criteria, /*correct=*/false);
  EXPECT_EQ(again.violations_crit2, 0u);
  EXPECT_EQ(again.violations_crit3, 0u);

  // And the occupied too-cold decision drives the temperature up.
  const auto cold = policy.decide({18.0, -5.0, 50.0, 3.0, 0.0, 11.0});
  EXPECT_GT(cold.heating_c, 18.0);
}

TEST(RefinementTest, WholesaleCorrectionWithoutRefinement) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  VerificationCriteria criteria = winter_criteria();
  criteria.refine_straddling_leaves = false;
  verify_formal(policy, criteria, /*correct=*/true);

  // Without refinement, the unoccupied setback leaf straddles occupancy
  // and temperature, fails #3 (15 < 20 worst case), and is corrected
  // wholesale — night setback is destroyed. This documents exactly the
  // failure mode the refinement exists to prevent.
  const auto night = policy.decide({16.0, -5.0, 50.0, 3.0, 0.0, 0.0});
  EXPECT_GT(night.heating_c, 15.0);
}

TEST(RefinementTest, ReportCountsSubjectLeaves) {
  const control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(two_leaf_dataset(actions), actions);
  const FormalReport report = verify_formal(policy, winter_criteria(), /*correct=*/true);
  // After refinement the occupied hold-leaf has a too-warm child and a
  // too-cold child, both subject.
  EXPECT_GE(report.leaves_subject_crit2, 1u);
  EXPECT_GE(report.leaves_subject_crit3, 1u);
  EXPECT_EQ(report.leaves_total, policy.tree().leaf_count());
}

}  // namespace
}  // namespace verihvac::core
