#include "core/verification.hpp"

#include <gtest/gtest.h>

#include "core/core_test_utils.hpp"

namespace verihvac::core {
namespace {

using testutil::toy_history;
using testutil::toy_model;

/// Decision dataset engineered so the fitted tree contains specific
/// criterion violations:
///  * occupied & too warm (s > 23.5) labeled with cooling setpoint 30
///    (refuses to cool)  -> violates #2
///  * occupied & too cold (s < 20) labeled with heating setpoint 15
///    (refuses to heat)  -> violates #3
///  * unoccupied anything -> setback (exempt: criteria guard occupied hours)
///  * occupied & comfortable -> sensible comfort action
DecisionDataset adversarial_dataset(const control::ActionSpace& actions, std::size_t n,
                                    std::uint64_t seed) {
  Rng rng(seed);
  DecisionDataset data;
  const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  const std::size_t comfort = actions.nearest_index(sim::SetpointPair{21.0, 23.0});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = {rng.uniform(15.0, 28.0), rng.uniform(-5.0, 10.0),
                             rng.uniform(30.0, 90.0), rng.uniform(0.0, 8.0),
                             rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
    std::size_t label;
    if (x[env::kOccupancy] <= 0.5) {
      label = setback;
    } else if (x[env::kZoneTemp] > 23.5 || x[env::kZoneTemp] < 20.0) {
      label = setback;  // the engineered fault: ignore the violation
    } else {
      label = comfort;
    }
    data.records.push_back({std::move(x), label});
  }
  return data;
}

VerificationCriteria winter_criteria() {
  VerificationCriteria c;
  c.comfort = env::winter_comfort();
  c.safe_probability_threshold = 0.8;
  c.horizon = 8;
  return c;
}

TEST(CorrectionActionTest, IsComfortMedianAndSatisfiesBothCriteria) {
  control::ActionSpace actions;
  const std::size_t idx = correction_action(actions, env::winter_comfort());
  const auto action = actions.action(idx);
  // Median of [20, 23.5] is 21.75; nearest integer pair is (22, 22).
  EXPECT_DOUBLE_EQ(action.heating_c, 22.0);
  EXPECT_DOUBLE_EQ(action.cooling_c, 22.0);
  // #2: cooling below z_hi; #3: heating above z_lo.
  EXPECT_LE(action.cooling_c, 23.5);
  EXPECT_GE(action.heating_c, 20.0);
}

TEST(FormalVerificationTest, DetectsEngineeredViolations) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(adversarial_dataset(actions, 600, 1), actions);
  const FormalReport report = verify_formal(policy, winter_criteria(), /*correct=*/false);
  EXPECT_GT(report.violations_crit2, 0u);
  EXPECT_GT(report.violations_crit3, 0u);
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.corrected_crit2 + report.corrected_crit3, 0u);  // no correction asked
  EXPECT_EQ(report.leaves_total, policy.tree().leaf_count());
}

TEST(FormalVerificationTest, CorrectionFixesAllViolations) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(adversarial_dataset(actions, 600, 2), actions);
  const FormalReport first = verify_formal(policy, winter_criteria(), /*correct=*/true);
  EXPECT_GT(first.corrected_crit2 + first.corrected_crit3, 0u);
  // Re-verification must now pass: this is the paper's deployment gate.
  const FormalReport second = verify_formal(policy, winter_criteria(), /*correct=*/false);
  EXPECT_TRUE(second.all_pass());
}

TEST(FormalVerificationTest, CorrectedPolicyHeatsWhenColdOccupied) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(adversarial_dataset(actions, 600, 3), actions);
  verify_formal(policy, winter_criteria(), /*correct=*/true);
  // A deep-cold occupied input must now receive a heating setpoint above
  // the zone temperature (criterion #3 semantics).
  for (double s : {16.0, 18.0, 19.5}) {
    const auto action = policy.decide({s, -3.0, 60.0, 3.0, 50.0, 11.0});
    EXPECT_GT(action.heating_c, s) << "zone temp " << s;
  }
}

TEST(FormalVerificationTest, CorrectedPolicyCoolsWhenWarmOccupied) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(adversarial_dataset(actions, 600, 4), actions);
  verify_formal(policy, winter_criteria(), /*correct=*/true);
  for (double s : {24.0, 26.0, 27.5}) {
    const auto action = policy.decide({s, 5.0, 60.0, 3.0, 200.0, 11.0});
    EXPECT_LT(action.cooling_c, s) << "zone temp " << s;
  }
}

TEST(FormalVerificationTest, UnoccupiedLeavesAreExempt) {
  // A policy that only ever sees unoccupied data may set back freely; the
  // criteria guard occupied hours (§3.1).
  control::ActionSpace actions;
  DecisionDataset data;
  Rng rng(5);
  const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  for (int i = 0; i < 200; ++i) {
    data.records.push_back(
        {{rng.uniform(14.0, 30.0), 0.0, 50.0, 3.0, 0.0, 0.0}, setback});
  }
  DtPolicy policy = DtPolicy::fit(data, actions);
  const FormalReport report = verify_formal(policy, winter_criteria(), true);
  // Tree is a single always-setback leaf with an occupancy-unsplit box; it
  // intersects occupied space, so it IS subject — but if the dataset had an
  // occupancy split the unoccupied side would be exempt. Verify on a policy
  // with the split:
  DecisionDataset mixed = data;
  const std::size_t comfort = actions.nearest_index(sim::SetpointPair{21.0, 23.0});
  for (int i = 0; i < 200; ++i) {
    mixed.records.push_back(
        {{rng.uniform(20.0, 23.4), 0.0, 50.0, 3.0, 0.0, 11.0}, comfort});
  }
  DtPolicy split_policy = DtPolicy::fit(mixed, actions);
  const FormalReport split_report =
      verify_formal(split_policy, winter_criteria(), false);
  // The unoccupied-setback leaf must not be flagged.
  for (const auto& finding : split_report.findings) {
    const Box box = split_policy.tree().leaf_box(finding.leaf);
    EXPECT_GT(box[env::kOccupancy].hi, 0.5);
  }
  (void)report;
}

TEST(FormalVerificationTest, CleanPolicyPassesWithoutCorrections) {
  // A policy that always answers with the comfort-median action is
  // verifiable by construction.
  control::ActionSpace actions;
  DecisionDataset data;
  Rng rng(6);
  const std::size_t median = correction_action(actions, env::winter_comfort());
  for (int i = 0; i < 100; ++i) {
    data.records.push_back(
        {{rng.uniform(14.0, 30.0), rng.uniform(-5.0, 10.0), 50.0, 3.0, 0.0,
          rng.bernoulli(0.5) ? 11.0 : 0.0},
         median});
  }
  DtPolicy policy = DtPolicy::fit(data, actions);
  const FormalReport report = verify_formal(policy, winter_criteria(), true);
  EXPECT_TRUE(report.all_pass());
  EXPECT_EQ(report.corrected_crit2 + report.corrected_crit3, 0u);
}

class ProbabilisticVerificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = toy_history(1500, 7);
    model_ = toy_model(history_);
  }

  /// A conservative policy trained to hold comfort — should be mostly safe.
  DtPolicy safe_policy() {
    control::ActionSpace actions;
    DecisionDataset data;
    Rng rng(8);
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{21.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    for (int i = 0; i < 400; ++i) {
      std::vector<double> x = {rng.uniform(18.0, 25.0), rng.uniform(-5.0, 10.0),
                               60.0,                    3.0,
                               rng.uniform(0.0, 300.0), rng.bernoulli(0.6) ? 11.0 : 0.0};
      const std::size_t label = x[env::kOccupancy] > 0.5 ? hold : setback;
      data.records.push_back({std::move(x), label});
    }
    return DtPolicy::fit(data, control::ActionSpace{});
  }

  /// A reckless policy that always sets back — should fail often from
  /// near-boundary safe states.
  DtPolicy reckless_policy() {
    control::ActionSpace actions;
    DecisionDataset data;
    Rng rng(9);
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    for (int i = 0; i < 200; ++i) {
      data.records.push_back({{rng.uniform(14.0, 30.0), rng.uniform(-5.0, 10.0), 60.0, 3.0,
                               0.0, rng.bernoulli(0.5) ? 11.0 : 0.0},
                              setback});
    }
    return DtPolicy::fit(data, control::ActionSpace{});
  }

  dyn::TransitionDataset history_;
  std::shared_ptr<dyn::DynamicsModel> model_;
};

TEST_F(ProbabilisticVerificationTest, SafePolicyScoresHigh) {
  const DtPolicy policy = safe_policy();
  AugmentedSampler sampler(history_.policy_inputs(), 0.01);
  Rng rng(10);
  const ProbabilisticReport report = verify_probabilistic_one_step(
      policy, *model_, sampler, winter_criteria(), 1500, rng);
  EXPECT_EQ(report.samples, 1500u);
  EXPECT_GT(report.safe_probability, 0.85);
  EXPECT_TRUE(report.passes(winter_criteria()));
}

TEST_F(ProbabilisticVerificationTest, RecklessPolicyScoresLower) {
  AugmentedSampler sampler(history_.policy_inputs(), 0.01);
  Rng rng1(11);
  Rng rng2(11);
  const auto safe = verify_probabilistic_one_step(safe_policy(), *model_, sampler,
                                                  winter_criteria(), 1200, rng1);
  const auto reckless = verify_probabilistic_one_step(reckless_policy(), *model_, sampler,
                                                      winter_criteria(), 1200, rng2);
  EXPECT_LT(reckless.safe_probability, safe.safe_probability);
}

TEST_F(ProbabilisticVerificationTest, OneStepEquivalentToHStepBootstrap) {
  // The §3.3.2 proof: the one-step estimator converges to the same failure
  // ratio as classifying every visited state of H-step bootstrap rollouts.
  const DtPolicy policy = safe_policy();
  AugmentedSampler sampler(history_.policy_inputs(), 0.01);
  Rng rng1(12);
  Rng rng2(13);
  const auto one = verify_probabilistic_one_step(policy, *model_, sampler,
                                                 winter_criteria(), 4000, rng1);
  const auto h = verify_probabilistic_h_step(policy, *model_, sampler, winter_criteria(),
                                             4000, rng2);
  EXPECT_EQ(h.samples, 4000u);
  EXPECT_NEAR(one.safe_probability, h.safe_probability, 0.08);
}

TEST_F(ProbabilisticVerificationTest, ReportIsDeterministicGivenSeed) {
  const DtPolicy policy = safe_policy();
  AugmentedSampler sampler(history_.policy_inputs(), 0.01);
  Rng a(14);
  Rng b(14);
  const auto r1 =
      verify_probabilistic_one_step(policy, *model_, sampler, winter_criteria(), 500, a);
  const auto r2 =
      verify_probabilistic_one_step(policy, *model_, sampler, winter_criteria(), 500, b);
  EXPECT_DOUBLE_EQ(r1.safe_probability, r2.safe_probability);
  EXPECT_EQ(r1.failures, r2.failures);
}

TEST_F(ProbabilisticVerificationTest, PassesThresholdSemantics) {
  ProbabilisticReport report;
  report.safe_probability = 0.95;
  VerificationCriteria c;
  c.safe_probability_threshold = 0.9;
  EXPECT_TRUE(report.passes(c));
  c.safe_probability_threshold = 0.99;
  EXPECT_FALSE(report.passes(c));
}

}  // namespace
}  // namespace verihvac::core
