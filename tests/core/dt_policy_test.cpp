#include "core/dt_policy.hpp"

#include <gtest/gtest.h>

#include "core/core_test_utils.hpp"

namespace verihvac::core {
namespace {

/// Builds a small decision dataset with a transparent rule:
/// occupied -> h=21/c=24 when cold, h=20/c=23 otherwise; unoccupied -> setback.
DecisionDataset rule_dataset(const control::ActionSpace& actions, std::size_t n,
                             std::uint64_t seed) {
  Rng rng(seed);
  DecisionDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = {rng.uniform(16.0, 26.0), rng.uniform(-5.0, 10.0),
                             rng.uniform(30.0, 90.0), rng.uniform(0.0, 8.0),
                             rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
    std::size_t label;
    if (x[env::kOccupancy] > 0.5) {
      label = x[env::kZoneTemp] < 21.0
                  ? actions.nearest_index(sim::SetpointPair{21.0, 24.0})
                  : actions.nearest_index(sim::SetpointPair{20.0, 23.0});
    } else {
      label = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    }
    data.records.push_back({std::move(x), label});
  }
  return data;
}

TEST(DtPolicyTest, FitEmptyThrows) {
  EXPECT_THROW(DtPolicy::fit(DecisionDataset{}, control::ActionSpace{}),
               std::invalid_argument);
}

TEST(DtPolicyTest, ReproducesTrainingDecisions) {
  control::ActionSpace actions;
  const DecisionDataset data = rule_dataset(actions, 400, 1);
  const DtPolicy policy = DtPolicy::fit(data, actions);
  for (const auto& record : data.records) {
    EXPECT_EQ(policy.decide_index(record.input), record.action_index);
  }
}

TEST(DtPolicyTest, DecisionsAreDeterministic) {
  // The core claim of the paper: same input -> same output, always (Fig. 5).
  control::ActionSpace actions;
  const DtPolicy policy = DtPolicy::fit(rule_dataset(actions, 300, 2), actions);
  const std::vector<double> x = {19.0, 0.0, 60.0, 3.0, 100.0, 11.0};
  const auto first = policy.decide(x);
  for (int i = 0; i < 100; ++i) {
    const auto again = policy.decide(x);
    EXPECT_DOUBLE_EQ(again.heating_c, first.heating_c);
    EXPECT_DOUBLE_EQ(again.cooling_c, first.cooling_c);
  }
}

TEST(DtPolicyTest, GeneralizesTheOccupancyRule) {
  control::ActionSpace actions;
  const DtPolicy policy = DtPolicy::fit(rule_dataset(actions, 800, 3), actions);
  // Unseen unoccupied input -> setback.
  const auto night = policy.decide({21.0, -3.0, 55.0, 2.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(night.heating_c, 15.0);
  // Unseen occupied cold input -> heating.
  const auto morning = policy.decide({18.0, -3.0, 55.0, 2.0, 0.0, 11.0});
  EXPECT_GE(morning.heating_c, 21.0);
}

TEST(DtPolicyTest, ActIgnoresForecast) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(rule_dataset(actions, 200, 4), actions);
  env::Observation obs;
  obs.zone_temp_c = 22.0;
  obs.occupants = 0.0;
  const auto without = policy.act(obs, {});
  const auto with = policy.act(obs, std::vector<env::Disturbance>(10));
  EXPECT_DOUBLE_EQ(without.heating_c, with.heating_c);
  EXPECT_EQ(policy.forecast_horizon(), 0u);
  EXPECT_EQ(policy.name(), "DT");
}

TEST(DtPolicyTest, ToTextUsesPhysicalNames) {
  control::ActionSpace actions;
  const DtPolicy policy = DtPolicy::fit(rule_dataset(actions, 200, 5), actions);
  const std::string text = policy.to_text();
  EXPECT_NE(text.find("occupants"), std::string::npos);
  EXPECT_NE(text.find("h="), std::string::npos);  // action labels
}

TEST(DtPolicyTest, ConstructorValidatesTree) {
  // A tree over the wrong number of features must be rejected.
  tree::DecisionTreeClassifier wrong;
  wrong.fit({{1.0}, {2.0}}, {0, 1}, 2);
  EXPECT_THROW(DtPolicy(std::move(wrong), control::ActionSpace{}), std::invalid_argument);
}

TEST(DtPolicyTest, CopyIsIndependent) {
  control::ActionSpace actions;
  DtPolicy policy = DtPolicy::fit(rule_dataset(actions, 200, 6), actions);
  DtPolicy copy = policy;
  // Corrupt the copy's tree; original must be unaffected.
  const auto leaves = copy.tree().leaves();
  copy.mutable_tree().set_leaf_label(leaves.front(), 0);
  bool any_difference = false;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {rng.uniform(16.0, 26.0), 0.0, 50.0, 3.0,
                                   100.0,                    rng.bernoulli(0.5) ? 11.0 : 0.0};
    if (policy.decide_index(x) != copy.decide_index(x)) any_difference = true;
  }
  // (The corrupted leaf may or may not be hit; the important part is the
  // original still matches its training data.)
  const DecisionDataset data = rule_dataset(actions, 200, 6);
  for (const auto& r : data.records) {
    EXPECT_EQ(policy.decide_index(r.input), r.action_index);
  }
  (void)any_difference;
}

}  // namespace
}  // namespace verihvac::core
