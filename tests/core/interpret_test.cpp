// Interpretability reports: explanations, feature importance, summaries.
#include <gtest/gtest.h>

#include "core/interpret.hpp"

namespace verihvac::core {
namespace {

/// Policy whose only relevant features are zone temp (dim 0) and
/// occupancy (dim 5): occupied -> hold 21/23, unoccupied -> setback.
DtPolicy simple_policy() {
  const control::ActionSpace actions;
  const std::size_t hold = actions.nearest_index(sim::SetpointPair{21.0, 23.0});
  const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
  DecisionDataset data;
  for (int i = 0; i < 30; ++i) {
    const double temp = 16.0 + 0.3 * i;
    data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
    data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
  }
  return DtPolicy::fit(data, actions);
}

TEST(InterpretTest, ExplainReproducesTheDecision) {
  const DtPolicy policy = simple_policy();
  const std::vector<double> x = {21.0, -3.0, 60.0, 4.0, 0.0, 11.0};
  const Explanation explanation = explain(policy, x);
  const sim::SetpointPair direct = policy.decide(x);
  EXPECT_DOUBLE_EQ(explanation.action.heating_c, direct.heating_c);
  EXPECT_DOUBLE_EQ(explanation.action.cooling_c, direct.cooling_c);
}

TEST(InterpretTest, ExplanationStepsMatchTheInput) {
  const DtPolicy policy = simple_policy();
  const std::vector<double> x = {21.0, -3.0, 60.0, 4.0, 0.0, 0.0};
  const Explanation explanation = explain(policy, x);
  ASSERT_FALSE(explanation.steps.empty());
  for (const auto& step : explanation.steps) {
    // Each recorded comparison must be true of the input itself.
    if (step.went_left) {
      EXPECT_LE(step.value, step.threshold);
    } else {
      EXPECT_GT(step.value, step.threshold);
    }
  }
}

TEST(InterpretTest, ExplanationRendersPhysicalNames) {
  const DtPolicy policy = simple_policy();
  const Explanation explanation =
      explain(policy, {21.0, -3.0, 60.0, 4.0, 0.0, 11.0});
  const std::string text = explanation.to_string();
  EXPECT_NE(text.find("decision: heating"), std::string::npos);
  // The only informative split is occupancy, rendered with its physical
  // input_dim_names() label rather than a bare x[5].
  EXPECT_NE(text.find("occupants"), std::string::npos);
  EXPECT_EQ(text.find("x[5]"), std::string::npos);
}

TEST(InterpretTest, CorrectedLeafIsFlagged) {
  const DtPolicy policy = simple_policy();
  const std::vector<double> x = {21.0, -3.0, 60.0, 4.0, 0.0, 11.0};
  const int leaf = policy.tree().decision_leaf(x);
  const Explanation plain = explain(policy, x);
  EXPECT_FALSE(plain.corrected);
  const Explanation flagged = explain(policy, x, {leaf});
  EXPECT_TRUE(flagged.corrected);
}

TEST(InterpretTest, FeatureImportanceConcentratesOnOccupancy) {
  const DtPolicy policy = simple_policy();
  const std::vector<double> importance = feature_importance(policy);
  ASSERT_EQ(importance.size(), env::kInputDims);
  // Occupancy is the only label-relevant dimension in this dataset.
  for (std::size_t dim = 0; dim < importance.size(); ++dim) {
    if (dim == env::kOccupancy) continue;
    EXPECT_GE(importance[env::kOccupancy], importance[dim]);
  }
  double sum = 0.0;
  for (double v : importance) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(InterpretTest, SingleLeafPolicyHasZeroImportance) {
  const control::ActionSpace actions;
  DecisionDataset data;
  for (int i = 0; i < 10; ++i) {
    data.records.push_back({{20.0 + i, 0.0, 50.0, 3.0, 0.0, 0.0}, 0});
  }
  const DtPolicy policy = DtPolicy::fit(data, actions);
  const std::vector<double> importance = feature_importance(policy);
  for (double v : importance) EXPECT_DOUBLE_EQ(v, 0.0);
  const Explanation explanation = explain(policy, {20.0, 0.0, 50.0, 3.0, 0.0, 0.0});
  EXPECT_TRUE(explanation.steps.empty());
}

TEST(InterpretTest, PolicySummaryCountsLeavesAndSamples) {
  const DtPolicy policy = simple_policy();
  const std::vector<ActionCoverage> coverage = policy_summary(policy);
  std::size_t total_leaves = 0;
  std::size_t total_samples = 0;
  for (const auto& entry : coverage) {
    total_leaves += entry.leaves;
    total_samples += entry.samples;
  }
  EXPECT_EQ(total_leaves, policy.tree().leaf_count());
  EXPECT_EQ(total_samples, 60u);  // every training record lands in a leaf
}

TEST(InterpretTest, ReportsAreNonEmptyAndMentionActions) {
  const DtPolicy policy = simple_policy();
  EXPECT_NE(feature_importance_report(policy).find("importance"), std::string::npos);
  const std::string summary = policy_summary_report(policy);
  EXPECT_NE(summary.find("heat 15"), std::string::npos);
  EXPECT_NE(summary.find("heat 21"), std::string::npos);
}

}  // namespace
}  // namespace verihvac::core
