#include "core/verification_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core_test_utils.hpp"

namespace verihvac::core {
namespace {

/// Mirrors tests/control/rollout_engine_test.cpp: the same workload run
/// through pools of different widths must produce bit-identical reports.
class VerificationEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new dyn::TransitionDataset(testutil::toy_history(1500, 12));
    dyn::DynamicsModelConfig cfg;
    cfg.hidden = {16};
    cfg.trainer.epochs = 80;
    cfg.trainer.adam.learning_rate = 3e-3;
    model_ = std::make_shared<dyn::DynamicsModel>(cfg);
    model_->train(*history_);
    sampler_ = new AugmentedSampler(history_->policy_inputs(), 0.01);
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
    delete sampler_;
    sampler_ = nullptr;
    model_.reset();
  }

  static DtPolicy hold_policy() {
    const control::ActionSpace actions;
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{22.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    DecisionDataset data;
    for (int i = 0; i < 40; ++i) {
      const double temp = 14.0 + 0.3 * i;
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
    }
    return DtPolicy::fit(data, actions);
  }

  static VerificationCriteria winter() {
    VerificationCriteria c;
    c.comfort = env::winter_comfort();
    return c;
  }

  static VerificationEngine engine_with_threads(std::size_t threads) {
    return VerificationEngine(std::make_shared<const common::TaskPool>(
        common::TaskPoolConfig{threads, /*min_parallel_batch=*/1}));
  }

  static dyn::TransitionDataset* history_;
  static AugmentedSampler* sampler_;
  static std::shared_ptr<dyn::DynamicsModel> model_;
};

dyn::TransitionDataset* VerificationEngineTest::history_ = nullptr;
AugmentedSampler* VerificationEngineTest::sampler_ = nullptr;
std::shared_ptr<dyn::DynamicsModel> VerificationEngineTest::model_;

TEST_F(VerificationEngineTest, ProbabilisticReportBitIdenticalAcrossThreadCounts) {
  const DtPolicy policy = hold_policy();
  const auto serial =
      engine_with_threads(1).verify_probabilistic(policy, *model_, *sampler_, winter(), 400, 404);
  for (std::size_t threads : {4u, 8u}) {
    const auto parallel = engine_with_threads(threads).verify_probabilistic(
        policy, *model_, *sampler_, winter(), 400, 404);
    EXPECT_EQ(parallel.samples, serial.samples) << threads << " threads";
    EXPECT_EQ(parallel.failures, serial.failures) << threads << " threads";
    EXPECT_EQ(parallel.safe_probability, serial.safe_probability) << threads << " threads";
  }
}

TEST_F(VerificationEngineTest, ProbabilisticReportReproducibleFromSeed) {
  const DtPolicy policy = hold_policy();
  const VerificationEngine engine = engine_with_threads(4);
  const auto a = engine.verify_probabilistic(policy, *model_, *sampler_, winter(), 300, 7);
  const auto b = engine.verify_probabilistic(policy, *model_, *sampler_, winter(), 300, 7);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.safe_probability, b.safe_probability);
}

TEST_F(VerificationEngineTest, ProbabilisticZeroSamplesIsEmptyReport) {
  const DtPolicy policy = hold_policy();
  const auto report = engine_with_threads(4).verify_probabilistic(policy, *model_, *sampler_,
                                                                  winter(), 0, 404);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.failures, 0u);
  // "Not measured" renders as NaN, never as 0% safe.
  EXPECT_TRUE(std::isnan(report.safe_probability));
}

TEST_F(VerificationEngineTest, IntervalReportMatchesSerialVerifier) {
  const DtPolicy policy = hold_policy();
  const auto serial = verify_interval_one_step(policy, *model_, winter());
  const auto parallel = engine_with_threads(8).verify_interval(policy, *model_, winter());
  ASSERT_EQ(parallel.results.size(), serial.results.size());
  EXPECT_EQ(parallel.leaves_total, serial.leaves_total);
  EXPECT_EQ(parallel.leaves_subject, serial.leaves_subject);
  EXPECT_EQ(parallel.leaves_certified, serial.leaves_certified);
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(parallel.results[i].leaf, serial.results[i].leaf);
    EXPECT_EQ(parallel.results[i].cells, serial.results[i].cells);
    EXPECT_EQ(parallel.results[i].cells_certified, serial.results[i].cells_certified);
    EXPECT_EQ(parallel.results[i].certified, serial.results[i].certified);
    // Bit-identical union images, not merely close.
    EXPECT_EQ(parallel.results[i].next_state.lo, serial.results[i].next_state.lo);
    EXPECT_EQ(parallel.results[i].next_state.hi, serial.results[i].next_state.hi);
  }
}

TEST_F(VerificationEngineTest, CertifiedLeafSetIdenticalAcrossThreadCounts) {
  const DtPolicy policy = hold_policy();
  IntervalVerifyConfig fine;
  fine.zone_slice_c = 0.25;
  fine.outdoor_slice_c = 2.0;
  const auto certified_set = [&](std::size_t threads) {
    std::set<int> leaves;
    const auto report =
        engine_with_threads(threads).verify_interval(policy, *model_, winter(), {}, fine);
    for (const auto& r : report.results) {
      if (r.certified) leaves.insert(r.leaf);
    }
    return leaves;
  };
  const auto reference = certified_set(1);
  EXPECT_EQ(certified_set(4), reference);
  EXPECT_EQ(certified_set(8), reference);
}

TEST_F(VerificationEngineTest, ReachTubesMatchSerialReachTube) {
  const DtPolicy policy = hold_policy();
  std::vector<std::vector<double>> starts;
  Rng rng = Rng::stream(11, 0);
  for (int i = 0; i < 24; ++i) {
    starts.push_back(sample_safe_occupied(*sampler_, winter().comfort, rng).first);
  }
  env::Disturbance d;
  d.weather.outdoor_temp_c = -3.0;
  d.weather.humidity_pct = 60.0;
  d.occupants = 11.0;
  const std::vector<env::Disturbance> forecast(10, d);

  const auto tubes = engine_with_threads(8).reach_tubes(policy, *model_, starts, forecast, 10);
  ASSERT_EQ(tubes.size(), starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const auto serial = reach_tube(policy, *model_, starts[i], forecast, 10);
    ASSERT_EQ(tubes[i].zone_temps.size(), serial.zone_temps.size());
    for (std::size_t k = 0; k < serial.zone_temps.size(); ++k) {
      EXPECT_EQ(tubes[i].zone_temps[k], serial.zone_temps[k]) << "tube " << i << " step " << k;
    }
  }
}

TEST_F(VerificationEngineTest, DefaultsToSharedPool) {
  const VerificationEngine engine;
  EXPECT_EQ(&engine.pool(), common::TaskPool::shared().get());
}

}  // namespace
}  // namespace verihvac::core
