#include "core/viper.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core_test_utils.hpp"
#include "envlib/env.hpp"
#include "weather/climate.hpp"

namespace verihvac::core {
namespace {

/// Shared slow fixtures: one trained toy model reused by every test.
class ViperTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new dyn::TransitionDataset(testutil::toy_history(1200, 8));
    model_ = testutil::toy_model(*history_);
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
    model_.reset();
  }

  static control::RandomShootingConfig fast_rs() {
    control::RandomShootingConfig rs;
    rs.samples = 24;
    rs.horizon = 4;
    return rs;
  }

  static env::EnvConfig fast_env() {
    env::EnvConfig config;
    config.climate = weather::pittsburgh();
    config.days = 2;
    return config;
  }

  static control::MbrlAgent make_teacher() {
    return control::MbrlAgent(*model_, fast_rs(), control::ActionSpace{}, fast_env().reward,
                              /*seed=*/5);
  }

  static ViperConfig fast_config() {
    ViperConfig config;
    config.iterations = 3;
    config.steps_per_iteration = 24;
    config.mc_repeats = 2;
    return config;
  }

  static dyn::TransitionDataset* history_;
  static std::shared_ptr<dyn::DynamicsModel> model_;
};

dyn::TransitionDataset* ViperTest::history_ = nullptr;
std::shared_ptr<dyn::DynamicsModel> ViperTest::model_;

TEST_F(ViperTest, RejectsDegenerateConfigs) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  ViperConfig config = fast_config();
  config.iterations = 0;
  EXPECT_THROW(viper_extract(teacher, env, config), std::invalid_argument);
  config = fast_config();
  config.steps_per_iteration = 0;
  EXPECT_THROW(viper_extract(teacher, env, config), std::invalid_argument);
  config = fast_config();
  config.mc_repeats = 0;
  EXPECT_THROW(viper_extract(teacher, env, config), std::invalid_argument);
}

TEST_F(ViperTest, AggregatesOneBatchPerIteration) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  const ViperConfig config = fast_config();
  const ViperResult result = viper_extract(teacher, env, config);
  ASSERT_EQ(result.iterations.size(), config.iterations);
  EXPECT_EQ(result.aggregated.size(), config.iterations * config.steps_per_iteration);
  for (std::size_t m = 0; m < config.iterations; ++m) {
    EXPECT_EQ(result.iterations[m].aggregated_size, (m + 1) * config.steps_per_iteration);
    EXPECT_GE(result.iterations[m].teacher_match_rate, 0.0);
    EXPECT_LE(result.iterations[m].teacher_match_rate, 1.0);
    EXPECT_GE(result.iterations[m].mean_criticality, 0.0);
    EXPECT_GE(result.iterations[m].tree_nodes, 1u);
  }
}

TEST_F(ViperTest, ReturnsBestIterateByTeacherMatch) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  const ViperResult result = viper_extract(teacher, env, fast_config());
  ASSERT_NE(result.policy, nullptr);
  ASSERT_LT(result.best_iteration, result.iterations.size());
  const double best = result.iterations[result.best_iteration].teacher_match_rate;
  for (const auto& it : result.iterations) EXPECT_LE(it.teacher_match_rate, best + 1e-12);
}

TEST_F(ViperTest, UniformAggregationModeRuns) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  ViperConfig config = fast_config();
  config.q_weighted = false;  // plain DAgger
  const ViperResult result = viper_extract(teacher, env, config);
  ASSERT_NE(result.policy, nullptr);
  // Without Q-weighting every criticality weight is reported as 1.
  for (const auto& it : result.iterations) EXPECT_DOUBLE_EQ(it.mean_criticality, 1.0);
}

TEST_F(ViperTest, ResampleSizeCapsTheFitSet) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  ViperConfig config = fast_config();
  config.iterations = 2;
  config.resample_size = 10;  // tiny fit set => tiny trees
  const ViperResult result = viper_extract(teacher, env, config);
  for (const auto& it : result.iterations) EXPECT_LE(it.tree_nodes, 19u);  // <= 2*10-1
}

TEST_F(ViperTest, DeterministicForFixedSeed) {
  const ViperConfig config = fast_config();
  auto teacher1 = make_teacher();
  env::BuildingEnv env1(fast_env());
  const ViperResult a = viper_extract(teacher1, env1, config);
  auto teacher2 = make_teacher();
  env::BuildingEnv env2(fast_env());
  const ViperResult b = viper_extract(teacher2, env2, config);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t m = 0; m < a.iterations.size(); ++m) {
    EXPECT_EQ(a.iterations[m].tree_nodes, b.iterations[m].tree_nodes);
    EXPECT_DOUBLE_EQ(a.iterations[m].teacher_match_rate, b.iterations[m].teacher_match_rate);
  }
}

TEST_F(ViperTest, ActionValueSpreadIsNonNegativeAndNeedsForecast) {
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  const env::Observation obs = env.reset();
  const auto forecast = env.forecast(teacher.forecast_horizon());
  EXPECT_GE(action_value_spread(teacher, obs, forecast), 0.0);
  const std::vector<env::Disturbance> short_forecast(forecast.begin(), forecast.begin() + 1);
  EXPECT_THROW(action_value_spread(teacher, obs, short_forecast), std::invalid_argument);
}

TEST_F(ViperTest, CriticalityHigherWhenComfortIsAtStake) {
  // Both states are occupied over the whole horizon, so Eq. 2 weights the
  // energy proxy identically (w_e = 1e-2) and the spread difference is
  // driven by comfort: at 16 degC a wrong action (setback) accumulates a
  // ~4 degC comfort penalty every step while the right action recovers,
  // whereas at 21.5 degC nearly every action keeps the zone in comfort.
  // (Comparing an occupied against an *unoccupied* state would not work:
  // unoccupied w_e = 1 makes the raw energy proxy dominate the spread.)
  auto teacher = make_teacher();
  env::BuildingEnv env(fast_env());
  env.reset();
  auto forecast = env.forecast(teacher.forecast_horizon());
  for (auto& d : forecast) d.occupants = 11.0;

  env::Observation cold_occupied = env.observation();
  cold_occupied.zone_temp_c = 16.0;
  cold_occupied.occupants = 11.0;
  env::Observation mid_occupied = env.observation();
  mid_occupied.zone_temp_c = 21.5;
  mid_occupied.occupants = 11.0;

  const double critical = action_value_spread(teacher, cold_occupied, forecast);
  const double relaxed = action_value_spread(teacher, mid_occupied, forecast);
  EXPECT_GT(critical, relaxed);
}

}  // namespace
}  // namespace verihvac::core
