#include "core/certificate_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/interval_verify.hpp"
#include "core/verification_engine.hpp"
#include "core_test_utils.hpp"

namespace verihvac::core {
namespace {

/// A small fitted policy over the default action grid (same recipe as the
/// policy_io tests) for the hash/diff/cache structural tests.
DtPolicy make_policy(std::uint64_t seed = 3) {
  control::ActionSpace actions;
  Rng rng(seed);
  DecisionDataset data;
  for (int i = 0; i < 200; ++i) {
    DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0),  rng.uniform(0.0, 600.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return DtPolicy::fit(data, actions);
}

Box box2(double alo, double ahi, double blo, double bhi) {
  Box box(2);
  box[0] = Interval{alo, ahi};
  box[1] = Interval{blo, bhi};
  return box;
}

/// Smallest representable perturbation of a double — hashing and key
/// comparison operate on bit patterns, so even this must register.
double next_up(double x) { return std::nextafter(x, std::numeric_limits<double>::infinity()); }

// --- content hashing ---

TEST(CertificateHashTest, BoxHashSensitiveToSingleBitFlip) {
  const Box a = box2(18.0, 23.5, -5.0, 10.0);
  Box b = a;
  EXPECT_TRUE(box_bits_equal(a, b));
  EXPECT_EQ(hash_box(a), hash_box(b));

  b[1].hi = next_up(b[1].hi);
  EXPECT_FALSE(box_bits_equal(a, b));
  EXPECT_NE(hash_box(a), hash_box(b));
}

TEST(CertificateHashTest, BoxHashDistinguishesDimensionCount) {
  Box narrow(1);
  narrow[0] = Interval{0.0, 1.0};
  Box wide(2);
  wide[0] = Interval{0.0, 1.0};
  wide[1] = Interval::all();
  EXPECT_NE(hash_box(narrow), hash_box(wide));
  EXPECT_FALSE(box_bits_equal(narrow, wide));
}

TEST(CertificateHashTest, SchemaHashSeparatesLayouts) {
  EXPECT_EQ(hash_schema(env::baseline_schema()), hash_schema(env::baseline_schema()));
  EXPECT_NE(hash_schema(env::baseline_schema()), hash_schema(env::time_aware_schema()));
}

TEST(CertificateHashTest, DynamicsHashStableAcrossCopiesAndMovedByFineTune) {
  const dyn::TransitionDataset history = testutil::toy_history(400, 12);
  dyn::DynamicsModelConfig cfg;
  cfg.hidden = {8};
  cfg.trainer.epochs = 10;
  dyn::DynamicsModel model(cfg);
  model.train(history);

  const std::uint64_t h = hash_dynamics(model);
  EXPECT_EQ(hash_dynamics(model), h);
  const dyn::DynamicsModel clone(model);
  EXPECT_EQ(hash_dynamics(clone), h);

  dyn::DynamicsModel tuned(model);
  tuned.fine_tune(history, 1);
  EXPECT_NE(hash_dynamics(tuned), h);
}

TEST(CertificateHashTest, UntrainedModelThrows) {
  dyn::DynamicsModel model;
  EXPECT_THROW(hash_dynamics(model), std::logic_error);
}

TEST(CertificateHashTest, PolicyFingerprintTracksTreeAndGrid) {
  const DtPolicy policy = make_policy();
  const std::uint64_t fp = policy_fingerprint(policy);
  EXPECT_EQ(policy_fingerprint(policy), fp);

  DtPolicy relabeled = policy;
  const int leaf = relabeled.tree().leaves().front();
  const int old_label = relabeled.tree().node(static_cast<std::size_t>(leaf)).label;
  relabeled.mutable_tree().set_leaf_label(
      leaf, (old_label + 1) % static_cast<int>(relabeled.tree().num_classes()));
  EXPECT_NE(policy_fingerprint(relabeled), fp);
}

TEST(CertificateHashTest, CertificateKeyEqualityRequiresBothParts) {
  const CertificateKey a{42, box2(0.0, 1.0, 2.0, 3.0)};
  CertificateKey b = a;
  EXPECT_TRUE(certificate_keys_equal(a, b));
  EXPECT_EQ(hash_certificate_key(a), hash_certificate_key(b));
  b.dynamics_hash = 43;
  EXPECT_FALSE(certificate_keys_equal(a, b));
  b = a;
  b.cell[0].lo = next_up(b.cell[0].lo);
  EXPECT_FALSE(certificate_keys_equal(a, b));
}

// --- structural tree diff ---

TEST(TreeDiffTest, IdenticalTreesShareEveryLeaf) {
  const DtPolicy policy = make_policy();
  const TreeDiff diff = diff_trees(policy.tree(), policy.tree());
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.leaves_total, policy.tree().leaf_count());
  EXPECT_EQ(diff.leaves_changed, 0u);
  EXPECT_EQ(diff.changed_fraction(), 0.0);
}

TEST(TreeDiffTest, RelabeledLeafCountsExactlyOnce) {
  const DtPolicy incumbent = make_policy();
  DtPolicy candidate = incumbent;
  const int leaf = candidate.tree().leaves().front();
  const int old_label = candidate.tree().node(static_cast<std::size_t>(leaf)).label;
  candidate.mutable_tree().set_leaf_label(
      leaf, (old_label + 1) % static_cast<int>(candidate.tree().num_classes()));
  const TreeDiff diff = diff_trees(incumbent.tree(), candidate.tree());
  EXPECT_EQ(diff.leaves_changed, 1u);
  EXPECT_EQ(diff.leaves_total, candidate.tree().leaf_count());
}

TEST(TreeDiffTest, SplitLeafCountsBothNewLeaves) {
  const DtPolicy incumbent = make_policy();
  DtPolicy candidate = incumbent;
  const int leaf = candidate.tree().leaves().front();
  candidate.mutable_tree().split_leaf(leaf, 0, 20.0);
  const TreeDiff diff = diff_trees(incumbent.tree(), candidate.tree());
  EXPECT_EQ(diff.leaves_changed, 2u);
  EXPECT_EQ(diff.leaves_total, candidate.tree().leaf_count());
  EXPECT_EQ(diff.leaves_total, incumbent.tree().leaf_count() + 1);
}

TEST(TreeDiffTest, PerturbedRootThresholdInvalidatesEverything) {
  const DtPolicy incumbent = make_policy();
  std::vector<tree::TreeNode> nodes = incumbent.tree().nodes();
  ASSERT_FALSE(nodes[0].is_leaf());
  nodes[0].threshold = next_up(nodes[0].threshold);
  const auto candidate = tree::DecisionTreeClassifier::from_nodes(
      std::move(nodes), incumbent.tree().num_features(), incumbent.tree().num_classes());
  const TreeDiff diff = diff_trees(incumbent.tree(), candidate);
  EXPECT_EQ(diff.leaves_changed, candidate.leaf_count());
  EXPECT_EQ(diff.changed_fraction(), 1.0);
}

// --- the cache proper ---

TEST(CertificateCacheTest, MissInsertHitCycle) {
  CertificateCache cache;
  const CertificateKey key{7, box2(0.0, 1.0, 2.0, 3.0)};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, Interval{20.0, 21.0});
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->lo, 20.0);
  EXPECT_EQ(hit->hi, 21.0);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(CertificateCacheTest, LruEvictionPrefersColdEntries) {
  CertificateCache cache(2);
  const CertificateKey k1{1, box2(0.0, 1.0, 0.0, 1.0)};
  const CertificateKey k2{2, box2(0.0, 1.0, 0.0, 1.0)};
  const CertificateKey k3{3, box2(0.0, 1.0, 0.0, 1.0)};
  cache.insert(k1, Interval{0.0, 1.0});
  cache.insert(k2, Interval{0.0, 2.0});
  EXPECT_TRUE(cache.lookup(k1).has_value());  // k1 is now warmer than k2
  cache.insert(k3, Interval{0.0, 3.0});

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
}

TEST(CertificateCacheTest, PoisonedSlotIsRefusedNotSpliced) {
  // Force two different keys into one slot (simulating a 64-bit hash
  // collision or a corrupted entry): the lookup must verify the stored key
  // bit-for-bit and refuse, never return the stale image.
  CertificateCache cache;
  const CertificateKey stored{11, box2(0.0, 1.0, 0.0, 1.0)};
  CertificateKey probe = stored;
  probe.cell[0].hi = next_up(probe.cell[0].hi);

  const std::uint64_t slot = 12345;
  cache.insert_in_slot(slot, stored, Interval{19.0, 22.0});
  EXPECT_FALSE(cache.lookup_in_slot(slot, probe).has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The genuine key still hits.
  EXPECT_TRUE(cache.lookup_in_slot(slot, stored).has_value());
}

TEST(CertificateCacheTest, ClearDropsEntriesAndIncumbentButKeepsStats) {
  CertificateCache cache;
  const DtPolicy policy = make_policy();
  cache.insert({1, box2(0.0, 1.0, 0.0, 1.0)}, Interval{0.0, 1.0});
  cache.note_certified(policy, 99);
  ASSERT_TRUE(cache.has_incumbent());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.has_incumbent());
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(CertificateCacheTest, DiffAgainstIncumbentRequiresOne) {
  CertificateCache cache;
  const DtPolicy policy = make_policy();
  EXPECT_THROW(cache.diff_against_incumbent(policy), std::logic_error);
  cache.note_certified(policy, 5);
  EXPECT_EQ(cache.incumbent_dynamics_hash(), 5u);
  EXPECT_TRUE(cache.diff_against_incumbent(policy).identical());
}

// --- grid-aligned slicing ---

TEST(AlignedSplitTest, TilesIntervalExactlyOnTheGlobalLattice) {
  const Interval iv{17.3, 23.9};
  const double w = 0.5;
  const auto cells = split_interval_aligned(iv, w);
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells.front().lo, iv.lo);
  EXPECT_EQ(cells.back().hi, iv.hi);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_EQ(cells[i].hi, cells[i + 1].lo);  // contiguous, no gaps
    // Interior boundaries sit on exact multiples of the lattice width.
    const double k = cells[i].hi / w;
    EXPECT_EQ(k, std::round(k));
  }
  for (const Interval& cell : cells) {
    EXPECT_LE(cell.hi - cell.lo, w + 1e-12);
    EXPECT_GT(cell.hi, cell.lo);
  }
}

TEST(AlignedSplitTest, OverlappingIntervalsShareInteriorCellsBitwise) {
  // The whole point of lattice alignment: two different leaf boxes that
  // overlap must produce bit-identical interior cells, so their
  // certificates share cache entries.
  const double w = 0.25;
  const auto a = split_interval_aligned(Interval{0.0, 2.0}, w);
  const auto b = split_interval_aligned(Interval{0.6, 2.6}, w);
  std::size_t shared = 0;
  for (const Interval& ca : a) {
    for (const Interval& cb : b) {
      if (std::memcmp(&ca, &cb, sizeof(Interval)) == 0) ++shared;
    }
  }
  // [0.75, 2.0) interior cells are common to both tilings.
  EXPECT_GE(shared, 4u);
}

TEST(AlignedSplitTest, DegenerateIntervalYieldsOnePointCell) {
  const auto cells = split_interval_aligned(Interval{21.0, 21.0}, 0.5);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].lo, 21.0);
  EXPECT_EQ(cells[0].hi, 21.0);
}

// --- the engine's incremental path ---

class IncrementalRecertTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dyn::DynamicsModelConfig cfg;
    cfg.hidden = {16};
    cfg.trainer.epochs = 60;
    cfg.trainer.adam.learning_rate = 3e-3;
    model_ = std::make_shared<dyn::DynamicsModel>(cfg);
    model_->train(testutil::toy_history(1200, 12));
  }
  static void TearDownTestSuite() { model_.reset(); }

  static DtPolicy hold_policy() {
    const control::ActionSpace actions;
    const std::size_t hold = actions.nearest_index(sim::SetpointPair{22.0, 23.0});
    const std::size_t setback = actions.nearest_index(sim::SetpointPair{15.0, 30.0});
    DecisionDataset data;
    for (int i = 0; i < 40; ++i) {
      const double temp = 14.0 + 0.3 * i;
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 11.0}, hold});
      data.records.push_back({{temp, 0.0, 50.0, 3.0, 100.0, 0.0}, setback});
    }
    return DtPolicy::fit(data, actions);
  }

  static VerificationCriteria winter() {
    VerificationCriteria c;
    c.comfort = env::winter_comfort();
    return c;
  }

  static VerificationEngine engine_with_threads(std::size_t threads) {
    return VerificationEngine(std::make_shared<const common::TaskPool>(
        common::TaskPoolConfig{threads, /*min_parallel_batch=*/1}));
  }

  static void expect_reports_identical(const IntervalReport& a, const IntervalReport& b) {
    EXPECT_EQ(a.leaves_total, b.leaves_total);
    EXPECT_EQ(a.leaves_subject, b.leaves_subject);
    EXPECT_EQ(a.leaves_certified, b.leaves_certified);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].leaf, b.results[i].leaf);
      EXPECT_EQ(a.results[i].cells, b.results[i].cells);
      EXPECT_EQ(a.results[i].cells_certified, b.results[i].cells_certified);
      EXPECT_EQ(a.results[i].certified, b.results[i].certified);
      // Bit-level equality, not EXPECT_DOUBLE_EQ: spliced certificates
      // must be indistinguishable from recomputed ones.
      EXPECT_EQ(std::memcmp(&a.results[i].zone_temp, &b.results[i].zone_temp, sizeof(Interval)),
                0);
      EXPECT_EQ(
          std::memcmp(&a.results[i].next_state, &b.results[i].next_state, sizeof(Interval)), 0);
    }
  }

  static std::shared_ptr<dyn::DynamicsModel> model_;
};

std::shared_ptr<dyn::DynamicsModel> IncrementalRecertTest::model_;

TEST_F(IncrementalRecertTest, ColdCacheMatchesFullRunAcrossThreadCounts) {
  const DtPolicy policy = hold_policy();
  const auto full = engine_with_threads(1).verify_interval(policy, *model_, winter());
  for (std::size_t threads : {1u, 4u, 8u}) {
    const VerificationEngine engine = engine_with_threads(threads);
    CertificateCache cache;
    RecertStats stats;
    const auto incremental =
        engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {}, &stats);
    expect_reports_identical(incremental, full);
    // A cold cache is total invalidation: the fallback fires, every cell
    // is computed, and the cache comes out warm.
    EXPECT_TRUE(stats.fallback_full) << threads << " threads";
    EXPECT_EQ(stats.cells_computed, stats.cells_total);
    EXPECT_EQ(stats.cells_cached, 0u);
    EXPECT_EQ(cache.size(), stats.cells_total);
  }
}

TEST_F(IncrementalRecertTest, IdenticalRerunSplicesEverythingAndMatchesExactly) {
  const DtPolicy policy = hold_policy();
  for (std::size_t threads : {1u, 4u, 8u}) {
    const VerificationEngine engine = engine_with_threads(threads);
    CertificateCache cache;
    const auto first =
        engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {});
    RecertStats stats;
    const auto second =
        engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {}, &stats);
    expect_reports_identical(second, first);
    EXPECT_EQ(stats.cells_computed, 0u) << threads << " threads";
    EXPECT_EQ(stats.cells_cached, stats.cells_total);
    EXPECT_FALSE(stats.fallback_full);
    EXPECT_FALSE(stats.dynamics_changed);
    EXPECT_EQ(stats.diff_leaves_changed, 0u);
  }
}

TEST_F(IncrementalRecertTest, LocalizedRelabelRecomputesOnlyThatLeafsCells) {
  const DtPolicy incumbent = hold_policy();
  const VerificationEngine engine = engine_with_threads(4);
  CertificateCache cache;
  const auto incumbent_report =
      engine.verify_interval_incremental(incumbent, *model_, winter(), cache, {}, {}, {});
  ASSERT_FALSE(incumbent_report.results.empty());

  DtPolicy candidate = incumbent;
  const int leaf = incumbent_report.results.front().leaf;
  const int old_label = candidate.tree().node(static_cast<std::size_t>(leaf)).label;
  candidate.mutable_tree().set_leaf_label(
      leaf, (old_label + 1) % static_cast<int>(candidate.tree().num_classes()));

  // Never fall back in this test: we are asserting the precise splice set.
  RecertConfig recert;
  recert.fallback_fraction = 1.1;
  RecertStats stats;
  const auto spliced = engine.verify_interval_incremental(candidate, *model_, winter(), cache,
                                                          {}, {}, recert, &stats);
  const auto full = engine.verify_interval(candidate, *model_, winter());
  expect_reports_identical(spliced, full);

  // Only the relabeled leaf's cells were invalidated (its action dims
  // changed); every untouched leaf spliced.
  std::size_t relabeled_cells = 0;
  for (const IntervalLeafResult& r : full.results) {
    if (r.leaf == leaf) relabeled_cells = r.cells;
  }
  ASSERT_GT(relabeled_cells, 0u);
  EXPECT_EQ(stats.cells_computed, relabeled_cells);
  EXPECT_EQ(stats.cells_cached, stats.cells_total - relabeled_cells);
  EXPECT_FALSE(stats.fallback_full);
  EXPECT_FALSE(stats.dynamics_changed);
  EXPECT_EQ(stats.diff_leaves_changed, 1u);
}

TEST_F(IncrementalRecertTest, FineTunedModelTripsFullFallback) {
  const DtPolicy policy = hold_policy();
  const VerificationEngine engine = engine_with_threads(4);
  CertificateCache cache;
  engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {});

  dyn::DynamicsModel tuned(*model_);
  tuned.fine_tune(testutil::toy_history(200, 21), 2);
  RecertStats stats;
  const auto spliced =
      engine.verify_interval_incremental(policy, tuned, winter(), cache, {}, {}, {}, &stats);
  const auto full = engine.verify_interval(policy, tuned, winter());
  expect_reports_identical(spliced, full);
  EXPECT_TRUE(stats.dynamics_changed);
  EXPECT_TRUE(stats.fallback_full);
  EXPECT_EQ(stats.cells_computed, stats.cells_total);
  EXPECT_EQ(stats.cells_cached, 0u);
}

TEST_F(IncrementalRecertTest, DisabledFallbackStillProducesIdenticalReports) {
  // With the fallback disabled a broad invalidation degrades to "miss
  // everything, recompute everything" — slower, never wrong.
  const DtPolicy policy = hold_policy();
  const VerificationEngine engine = engine_with_threads(4);
  CertificateCache cache;
  engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {});

  dyn::DynamicsModel tuned(*model_);
  tuned.fine_tune(testutil::toy_history(200, 22), 2);
  RecertConfig recert;
  recert.fallback_fraction = 1.1;
  RecertStats stats;
  const auto spliced =
      engine.verify_interval_incremental(policy, tuned, winter(), cache, {}, {}, recert, &stats);
  expect_reports_identical(spliced, engine.verify_interval(policy, tuned, winter()));
  EXPECT_FALSE(stats.fallback_full);
  EXPECT_TRUE(stats.dynamics_changed);
  EXPECT_EQ(stats.cells_computed, stats.cells_total);
}

TEST_F(IncrementalRecertTest, EngineStatsAccumulateAcrossRuns) {
  const DtPolicy policy = hold_policy();
  const VerificationEngine engine = engine_with_threads(2);
  CertificateCache cache;
  engine.verify_interval(policy, *model_, winter());
  engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {});
  engine.verify_interval_incremental(policy, *model_, winter(), cache, {}, {}, {});

  const VerificationEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.interval_runs, 1u);
  EXPECT_EQ(stats.incremental_runs, 2u);
  EXPECT_EQ(stats.recert_fallbacks, 1u);  // the cold first incremental run
  EXPECT_GT(stats.recert_cells_total, 0u);
  EXPECT_EQ(stats.recert_cells_total, stats.recert_cells_cached + stats.recert_cells_computed);
}

}  // namespace
}  // namespace verihvac::core
