// Deployment-artifact integration: the verified (corrected) policy must
// survive every hand-off format bit-exactly — the policy bundle
// (core/policy_io), the C99 edge module (core/edge_export), and the
// whole-building coordinator (control/multizone). Serialization tests in
// tests/core cover round-trips of *raw* trees; these cover the artifact a
// user actually ships: the pipeline's verifier-corrected policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>

#include "control/multizone.hpp"
#include "core/edge_export.hpp"
#include "core/pipeline.hpp"
#include "core/policy_io.hpp"
#include "envlib/multizone_env.hpp"
#include "envlib/multizone_metrics.hpp"

namespace verihvac::core {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig cfg = PipelineConfig::for_city("Pittsburgh");
  cfg.env.days = 3;
  cfg.collection.episodes = 1;
  cfg.model.hidden = {20, 20};
  cfg.model.trainer.epochs = 60;
  cfg.rs.samples = 64;
  cfg.rs.horizon = 6;
  cfg.rs_distill = cfg.rs;
  cfg.rs_distill.refine_first_action = true;
  cfg.decision.mc_repeats = 3;
  cfg.decision_points = 300;
  cfg.probabilistic_samples = 200;
  return cfg;
}

class DeploymentTest : public ::testing::Test {
 protected:
  static const PipelineArtifacts& artifacts() {
    static const PipelineArtifacts instance = run_pipeline(tiny_config());
    return instance;
  }
};

TEST_F(DeploymentTest, BundleRoundTripsTheCorrectedPolicy) {
  const DtPolicy& verified = *artifacts().policy;
  const std::string path = ::testing::TempDir() + "/deploy.vhp";
  save_policy(verified, path);
  const DtPolicy reloaded = load_policy(path);

  // Same structure and identical decisions on a live operating day.
  EXPECT_EQ(reloaded.tree().node_count(), verified.tree().node_count());
  env::BuildingEnv building(artifacts().config.env);
  env::Observation obs = building.reset();
  for (int step = 0; step < 96; ++step) {
    const auto x = obs.to_vector();
    EXPECT_EQ(reloaded.decide_index(x), verified.decide_index(x)) << "step " << step;
    obs = building.step(verified.decide(x)).observation;
  }
}

TEST_F(DeploymentTest, ReloadedBundlePassesReverification) {
  const std::string path = ::testing::TempDir() + "/reverify.vhp";
  save_policy(*artifacts().policy, path);
  DtPolicy reloaded = load_policy(path);
  const FormalReport report =
      verify_formal(reloaded, artifacts().config.criteria, /*correct=*/false);
  EXPECT_EQ(report.violations_crit2, 0u);
  EXPECT_EQ(report.violations_crit3, 0u);
}

TEST_F(DeploymentTest, CorrectedTreeExportsToCAndReplaysExactly) {
  const DtPolicy& verified = *artifacts().policy;
  const std::string dir = ::testing::TempDir();
  EdgeExportOptions options;
  options.prefix = "deploy_dt";
  export_policy_c(verified, dir, options);

  const std::string c_path = dir + "/deploy_dt.c";
  {
    std::ofstream harness(c_path, std::ios::app);
    harness << "#include <stdio.h>\n"
               "int main(void) {\n"
               "  double x[6], h, c;\n"
               "  while (scanf(\"%lf %lf %lf %lf %lf %lf\", &x[0], &x[1], &x[2], &x[3],\n"
               "               &x[4], &x[5]) == 6) {\n"
               "    deploy_dt_decide(x, &h, &c);\n"
               "    printf(\"%.17g %.17g\\n\", h, c);\n"
               "  }\n"
               "  return 0;\n"
               "}\n";
  }
  const std::string bin = dir + "/deploy_dt.bin";
  if (std::system(("cc -std=c99 -O2 -o " + bin + " " + c_path + " 2>/dev/null").c_str()) != 0) {
    GTEST_SKIP() << "host C compiler unavailable";
  }

  // Replay a simulated day through the compiled module.
  env::BuildingEnv building(artifacts().config.env);
  env::Observation obs = building.reset();
  std::vector<std::vector<double>> inputs;
  for (int step = 0; step < 96; ++step) {
    inputs.push_back(obs.to_vector());
    obs = building.step(verified.decide(inputs.back())).observation;
  }
  const std::string in_path = dir + "/deploy_day.in";
  {
    std::ofstream in_file(in_path);
    in_file.precision(17);
    for (const auto& x : inputs) {
      for (std::size_t j = 0; j < x.size(); ++j) in_file << (j ? " " : "") << x[j];
      in_file << "\n";
    }
  }
  const std::string out_path = dir + "/deploy_day.out";
  ASSERT_EQ(std::system((bin + " < " + in_path + " > " + out_path).c_str()), 0);
  std::ifstream out_file(out_path);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    double heat = 0.0, cool = 0.0;
    ASSERT_TRUE(out_file >> heat >> cool);
    const auto expected = verified.decide(inputs[i]);
    EXPECT_DOUBLE_EQ(heat, expected.heating_c) << "step " << i;
    EXPECT_DOUBLE_EQ(cool, expected.cooling_c) << "step " << i;
  }
}

TEST_F(DeploymentTest, VerifiedPolicyDrivesTheWholeBuilding) {
  std::vector<std::shared_ptr<control::Controller>> per_zone;
  env::MultiZoneEnv building(artifacts().config.env);
  for (std::size_t z = 0; z < building.zone_count(); ++z) {
    per_zone.push_back(std::shared_ptr<control::Controller>(artifacts().make_dt_policy()));
  }
  control::MultiZoneCoordinator coordinator(std::move(per_zone));

  env::MultiZoneMetrics metrics(building.zone_count());
  auto observations = building.reset();
  while (true) {
    const auto actions =
        coordinator.act(observations, building.forecast(coordinator.forecast_horizon()));
    const auto outcome = building.step(actions);
    metrics.add(outcome);
    if (outcome.done) break;
    observations = outcome.observations;
  }
  EXPECT_EQ(metrics.steps(), building.horizon_steps());
  EXPECT_GT(metrics.total_energy_kwh(), 0.0);
  // The verified policy must keep every zone's occupied violation rate
  // well below the always-violating regime.
  for (std::size_t z = 0; z < building.zone_count(); ++z) {
    EXPECT_LT(metrics.violation_rate(z), 0.5) << "zone " << z;
  }
}

}  // namespace
}  // namespace verihvac::core
