// Whole-system behaviour tests: deploy pipeline-produced policies into the
// simulated building and check the paper's qualitative claims at tiny scale.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "control/evaluate.hpp"
#include "core/pipeline.hpp"
#include "tree/tree_io.hpp"

namespace verihvac::core {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig cfg = PipelineConfig::for_city("Pittsburgh");
  cfg.env.days = 5;  // Fri + weekend + Mon/Tue: both schedule regimes
  cfg.collection.episodes = 1;
  cfg.model.hidden = {20, 20};
  cfg.model.trainer.epochs = 60;
  cfg.rs.samples = 64;
  cfg.rs.horizon = 6;
  cfg.rs_distill = cfg.rs;
  cfg.rs_distill.refine_first_action = true;
  cfg.decision.mc_repeats = 3;
  cfg.decision_points = 400;
  cfg.probabilistic_samples = 300;
  return cfg;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static const PipelineArtifacts& artifacts() {
    static const PipelineArtifacts instance = run_pipeline(tiny_config());
    return instance;
  }
};

TEST_F(EndToEndTest, DtPolicyRunsAFullEpisode) {
  env::BuildingEnv environment(artifacts().config.env);
  auto policy = artifacts().make_dt_policy();
  const env::EpisodeMetrics metrics = control::run_episode(environment, *policy);
  EXPECT_EQ(metrics.steps(), environment.horizon_steps());
  EXPECT_GT(metrics.total_energy_kwh(), 0.0);
  EXPECT_LE(metrics.violation_rate(), 1.0);
}

TEST_F(EndToEndTest, DtPolicyIsDeterministicAcrossRedeployments) {
  // The Fig. 5 claim at system level: identical episodes, bit-for-bit.
  env::BuildingEnv env1(artifacts().config.env);
  env::BuildingEnv env2(artifacts().config.env);
  auto p1 = artifacts().make_dt_policy();
  auto p2 = artifacts().make_dt_policy();
  control::EpisodeTrace t1;
  control::EpisodeTrace t2;
  control::run_episode(env1, *p1, &t1);
  control::run_episode(env2, *p2, &t2);
  ASSERT_EQ(t1.actions.size(), t2.actions.size());
  for (std::size_t i = 0; i < t1.actions.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.actions[i].heating_c, t2.actions[i].heating_c);
    EXPECT_DOUBLE_EQ(t1.actions[i].cooling_c, t2.actions[i].cooling_c);
    EXPECT_DOUBLE_EQ(t1.zone_temps[i], t2.zone_temps[i]);
  }
}

TEST_F(EndToEndTest, MbrlAgentIsStochasticAcrossRuns) {
  // The Fig. 1 motivation at system level: two fresh-seeded MBRL runs
  // choose different actions somewhere along the same episode.
  auto agent = artifacts().make_mbrl_agent();
  env::BuildingEnv env1(artifacts().config.env);
  control::EpisodeTrace t1;
  control::run_episode(env1, *agent, &t1);

  auto agent2 = std::make_unique<control::MbrlAgent>(
      *artifacts().model, artifacts().config.rs,
      control::ActionSpace(artifacts().config.action_space), artifacts().config.env.reward,
      /*seed=*/999);
  env::BuildingEnv env2(artifacts().config.env);
  control::EpisodeTrace t2;
  control::run_episode(env2, *agent2, &t2);

  std::size_t differing = 0;
  for (std::size_t i = 0; i < t1.actions.size(); ++i) {
    if (t1.actions[i].heating_c != t2.actions[i].heating_c ||
        t1.actions[i].cooling_c != t2.actions[i].cooling_c) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(EndToEndTest, DtSavesEnergyVersusAlwaysOnDefault) {
  // The central Fig. 4 direction at tiny scale: the extracted policy uses
  // less energy than a default controller that never sets back.
  env::BuildingEnv env_dt(artifacts().config.env);
  auto policy = artifacts().make_dt_policy();
  const auto dt_metrics = control::run_episode(env_dt, *policy);

  control::RuleBasedController always_on(sim::SetpointPair{21.0, 23.5},
                                         sim::SetpointPair{21.0, 23.5});
  env::BuildingEnv env_on(artifacts().config.env);
  const auto on_metrics = control::run_episode(env_on, always_on);

  EXPECT_LT(dt_metrics.total_energy_kwh(), on_metrics.total_energy_kwh());
}

TEST_F(EndToEndTest, DtDecisionLatencyIsMicroseconds) {
  // Table 3's claim, loosely: a DT decision must be orders of magnitude
  // below a 15-minute control step; bound it at 50 microseconds average.
  auto policy = artifacts().make_dt_policy();
  env::Observation obs;
  obs.zone_temp_c = 21.0;
  obs.occupants = 11.0;
  const auto start = std::chrono::steady_clock::now();
  constexpr int kReps = 20000;
  volatile double sink = 0.0;
  for (int i = 0; i < kReps; ++i) {
    obs.zone_temp_c = 18.0 + (i % 80) * 0.1;
    sink = sink + policy->act(obs, {}).heating_c;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double us_per_decision =
      std::chrono::duration<double, std::micro>(elapsed).count() / kReps;
  EXPECT_LT(us_per_decision, 50.0);
}

TEST_F(EndToEndTest, VerifiedTreeSurvivesSerializationDeployment) {
  // Deployment path: save the verified tree, load it on the "edge device",
  // confirm identical decisions on live observations.
  const std::string path =
      (std::filesystem::temp_directory_path() / "verihvac_deploy.tree").string();
  tree::save_tree(artifacts().policy->tree(), path);
  const tree::DecisionTreeClassifier loaded = tree::load_tree(path);
  DtPolicy deployed(loaded, control::ActionSpace(artifacts().config.action_space));

  env::BuildingEnv environment(artifacts().config.env);
  env::Observation obs = environment.reset();
  for (int i = 0; i < 200; ++i) {
    const auto expected = artifacts().policy->decide(obs.to_vector());
    const auto got = deployed.decide(obs.to_vector());
    EXPECT_DOUBLE_EQ(got.heating_c, expected.heating_c);
    EXPECT_DOUBLE_EQ(got.cooling_c, expected.cooling_c);
    obs = environment.step(got).observation;
  }
}

}  // namespace
}  // namespace verihvac::core
