// Integration tests for the end-to-end extraction pipeline, run at a tiny
// scale so the suite stays fast: the point is wiring, invariants and
// determinism, not model quality (the benches measure that).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

namespace verihvac::core {
namespace {

PipelineConfig tiny_config(const std::string& city) {
  PipelineConfig cfg = PipelineConfig::for_city(city);
  cfg.env.days = 3;
  cfg.collection.episodes = 1;
  cfg.model.hidden = {16, 16};
  cfg.model.trainer.epochs = 25;
  cfg.rs.samples = 24;
  cfg.rs.horizon = 4;
  cfg.decision.mc_repeats = 2;
  cfg.decision_points = 80;
  cfg.probabilistic_samples = 300;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static const PipelineArtifacts& artifacts() {
    static const PipelineArtifacts instance = run_pipeline(tiny_config("Pittsburgh"));
    return instance;
  }
};

TEST_F(PipelineTest, ProducesAllArtifacts) {
  const auto& a = artifacts();
  EXPECT_GT(a.historical.size(), 0u);
  ASSERT_NE(a.model, nullptr);
  EXPECT_TRUE(a.model->trained());
  EXPECT_EQ(a.decisions.size(), 80u);
  ASSERT_NE(a.policy, nullptr);
  EXPECT_GT(a.policy->tree().node_count(), 1u);
}

TEST_F(PipelineTest, HistoricalSizeMatchesEpisodes) {
  // 1 episode x 3 days x 96 steps.
  EXPECT_EQ(artifacts().historical.size(), static_cast<std::size_t>(3 * 96));
}

TEST_F(PipelineTest, VerifiedPolicyPassesFormalReverification) {
  // The pipeline corrects during verification; re-running must be clean.
  auto policy = artifacts().make_dt_policy();
  const FormalReport report =
      verify_formal(*policy, artifacts().config.criteria, /*correct=*/false);
  EXPECT_TRUE(report.all_pass());
}

TEST_F(PipelineTest, ProbabilisticReportIsPopulated) {
  const auto& p = artifacts().probabilistic;
  EXPECT_EQ(p.samples, 300u);
  EXPECT_GE(p.safe_probability, 0.0);
  EXPECT_LE(p.safe_probability, 1.0);
}

TEST_F(PipelineTest, TreeSizeBookkeepingConsistent) {
  const auto& tree = artifacts().policy->tree();
  EXPECT_EQ(tree.node_count(), 2 * tree.leaf_count() - 1);
  EXPECT_EQ(artifacts().formal.leaves_total, tree.leaf_count());
}

TEST_F(PipelineTest, AgentsAreConstructible) {
  EXPECT_NE(artifacts().make_mbrl_agent(), nullptr);
  EXPECT_NE(artifacts().make_default_controller(), nullptr);
  EXPECT_NE(artifacts().make_dt_policy(), nullptr);
  // No ensemble requested in the tiny config.
  EXPECT_THROW(artifacts().make_clue_agent(), std::logic_error);
}

TEST_F(PipelineTest, RefitWithPrefixReusesDecisions) {
  const PipelineArtifacts smaller = refit_policy(artifacts(), 30);
  EXPECT_EQ(smaller.decisions.size(), 30u);
  // Prefix identity: first 30 records are shared.
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(smaller.decisions.records[i].action_index,
              artifacts().decisions.records[i].action_index);
  }
  ASSERT_NE(smaller.policy, nullptr);
  const FormalReport report =
      verify_formal(*smaller.make_dt_policy(), smaller.config.criteria, false);
  EXPECT_TRUE(report.all_pass());
}

TEST_F(PipelineTest, RefitBeyondBaseGeneratesMore) {
  const PipelineArtifacts bigger = refit_policy(artifacts(), 100);
  EXPECT_EQ(bigger.decisions.size(), 100u);
}

TEST(PipelineConfigTest, ForCityResolvesClimates) {
  EXPECT_EQ(PipelineConfig::for_city("Tucson").env.climate.name, "Tucson");
  EXPECT_EQ(PipelineConfig::for_city("Pittsburgh").env.climate.name, "Pittsburgh");
  EXPECT_THROW(PipelineConfig::for_city("Gotham"), std::invalid_argument);
}

TEST(PipelineConfigTest, EnsemblePipelineBuildsClue) {
  PipelineConfig cfg = tiny_config("Tucson");
  cfg.train_ensemble = true;
  cfg.ensemble.members = 2;
  cfg.ensemble.member_config.hidden = {12, 12};
  cfg.ensemble.member_config.trainer.epochs = 10;
  const PipelineArtifacts artifacts = run_pipeline(cfg);
  ASSERT_NE(artifacts.ensemble, nullptr);
  EXPECT_EQ(artifacts.ensemble->member_count(), 2u);
  EXPECT_NE(artifacts.make_clue_agent(), nullptr);
}

}  // namespace
}  // namespace verihvac::core
