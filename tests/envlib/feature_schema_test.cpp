#include "envlib/feature_schema.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace verihvac::env {
namespace {

Observation sample_observation() {
  Observation obs;
  obs.zone_temp_c = 21.5;
  obs.weather.outdoor_temp_c = -3.0;
  obs.weather.humidity_pct = 65.0;
  obs.weather.wind_mps = 4.5;
  obs.weather.solar_wm2 = 120.0;
  obs.occupants = 11.0;
  obs.step = 30;  // 7:30
  obs.hour_of_day = 7.5;
  const auto [s, c] = time_of_day_encoding(obs.step);
  obs.hour_sin = s;
  obs.hour_cos = c;
  obs.occupants_ahead = 9.0;
  return obs;
}

TEST(FeatureSchemaTest, BaselineMatchesLegacyLayoutBitwise) {
  const Observation obs = sample_observation();
  const auto legacy = obs.to_vector();
  const auto schema = baseline_schema().to_vector(obs);
  ASSERT_EQ(schema.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    // Bitwise, not approximate: baseline certificates depend on the schema
    // path copying the exact same stored doubles as the legacy flatten.
    EXPECT_EQ(schema[i], legacy[i]) << "dim " << i;
  }
}

TEST(FeatureSchemaTest, BaselineNamesMatchLegacyNames) {
  const auto& legacy = input_dim_names();
  const auto names = baseline_schema().feature_names();
  ASSERT_EQ(names.size(), legacy.size());
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_EQ(names[i], legacy[i]);
}

TEST(FeatureSchemaTest, RoleLookup) {
  const FeatureSchema& base = baseline_schema();
  EXPECT_EQ(base.dims(), kInputDims);
  EXPECT_EQ(base.zone_temp_index(), 0u);
  EXPECT_EQ(base.occupancy_index(), 5u);
  EXPECT_EQ(base.index_of(FeatureRole::kZoneTemp), 0u);
  EXPECT_FALSE(base.has_role(FeatureRole::kHourSin));
  EXPECT_THROW(base.index_of(FeatureRole::kHourSin), std::invalid_argument);

  const FeatureSchema& aware = time_aware_schema();
  EXPECT_EQ(aware.dims(), 9u);
  // The first six dims are the baseline layout, extended — not reordered.
  for (std::size_t i = 0; i < kInputDims; ++i) {
    EXPECT_EQ(aware.at(i).name, base.at(i).name) << "dim " << i;
  }
  EXPECT_EQ(aware.zone_temp_index(), 0u);
  EXPECT_EQ(aware.occupancy_index(), 5u);
  EXPECT_EQ(aware.index_of(FeatureRole::kHourSin), 6u);
  EXPECT_EQ(aware.index_of(FeatureRole::kHourCos), 7u);
  EXPECT_EQ(aware.index_of(FeatureRole::kOccupancyForecast), 8u);
}

TEST(FeatureSchemaTest, ExactlyOneStateDimension) {
  for (const char* name : {"baseline", "time-aware"}) {
    const FeatureSchema& schema = schema_by_name(name);
    std::size_t states = 0;
    for (const FeatureSpec& f : schema.features()) {
      if (f.kind == FeatureKind::kState) ++states;
    }
    EXPECT_EQ(states, 1u) << name;
    EXPECT_EQ(schema.at(schema.zone_temp_index()).kind, FeatureKind::kState) << name;
  }
}

TEST(FeatureSchemaTest, TimeAwareToVectorCarriesTemporalFields) {
  const Observation obs = sample_observation();
  const auto x = time_aware_schema().to_vector(obs);
  ASSERT_EQ(x.size(), 9u);
  EXPECT_EQ(x[6], obs.hour_sin);
  EXPECT_EQ(x[7], obs.hour_cos);
  EXPECT_EQ(x[8], obs.occupants_ahead);
}

TEST(FeatureSchemaTest, ToObservationRoundTrip) {
  const Observation obs = sample_observation();
  for (const char* name : {"baseline", "time-aware"}) {
    const FeatureSchema& schema = schema_by_name(name);
    const auto x = schema.to_vector(obs);
    const Observation back = schema.to_observation(x);
    // Whatever the schema encodes must re-flatten bit-identically.
    EXPECT_EQ(schema.to_vector(back), x) << name;
  }
  // The time-aware round trip restores the stored temporal fields exactly.
  const Observation back = time_aware_schema().to_observation(time_aware_schema().to_vector(obs));
  EXPECT_EQ(back.hour_sin, obs.hour_sin);
  EXPECT_EQ(back.hour_cos, obs.hour_cos);
  EXPECT_EQ(back.occupants_ahead, obs.occupants_ahead);
}

TEST(FeatureSchemaTest, ApplyDisturbanceMatchesLegacyOrder) {
  Disturbance d;
  d.weather.outdoor_temp_c = -7.0;
  d.weather.humidity_pct = 80.0;
  d.weather.wind_mps = 6.0;
  d.weather.solar_wm2 = 0.0;
  d.occupants = 3.0;
  const auto [s, c] = time_of_day_encoding(70);
  d.hour_sin = s;
  d.hour_cos = c;
  d.occupants_ahead = 11.0;

  double row[6] = {19.0, 0, 0, 0, 0, 0};
  baseline_schema().apply_disturbance(d, row);
  EXPECT_EQ(row[0], 19.0);  // state dim untouched
  EXPECT_EQ(row[1], d.weather.outdoor_temp_c);
  EXPECT_EQ(row[2], d.weather.humidity_pct);
  EXPECT_EQ(row[3], d.weather.wind_mps);
  EXPECT_EQ(row[4], d.weather.solar_wm2);
  EXPECT_EQ(row[5], d.occupants);

  double wide[9] = {19.0, 0, 0, 0, 0, 0, 0, 0, 0};
  time_aware_schema().apply_disturbance(d, wide);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(wide[i], row[i]) << "dim " << i;
  EXPECT_EQ(wide[6], d.hour_sin);
  EXPECT_EQ(wide[7], d.hour_cos);
  EXPECT_EQ(wide[8], d.occupants_ahead);

  // to_disturbance is the inverse on the non-state dims.
  const Disturbance back = time_aware_schema().to_disturbance(wide);
  double again[9] = {19.0, 0, 0, 0, 0, 0, 0, 0, 0};
  time_aware_schema().apply_disturbance(back, again);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(again[i], wide[i]) << "dim " << i;
}

TEST(FeatureSchemaTest, RegistryLookup) {
  EXPECT_EQ(schema_by_name("baseline"), baseline_schema());
  EXPECT_EQ(schema_by_name("time-aware"), time_aware_schema());
  EXPECT_NE(baseline_schema(), time_aware_schema());
  EXPECT_EQ(find_schema("no-such-schema"), nullptr);
  EXPECT_THROW(schema_by_name("no-such-schema"), std::invalid_argument);
  const auto names = schema_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "baseline");
  EXPECT_EQ(names[1], "time-aware");
}

TEST(FeatureSchemaTest, RoleAndKindNamesRoundTrip) {
  for (const FeatureRole role :
       {FeatureRole::kZoneTemp, FeatureRole::kOutdoorTemp, FeatureRole::kHumidity,
        FeatureRole::kWind, FeatureRole::kSolar, FeatureRole::kOccupancy, FeatureRole::kHourSin,
        FeatureRole::kHourCos, FeatureRole::kOccupancyForecast}) {
    EXPECT_EQ(feature_role_from_name(feature_role_name(role)), role);
  }
  for (const FeatureKind kind :
       {FeatureKind::kState, FeatureKind::kDisturbance, FeatureKind::kTemporal}) {
    EXPECT_EQ(feature_kind_from_name(feature_kind_name(kind)), kind);
  }
  EXPECT_THROW(feature_role_from_name("bogus"), std::invalid_argument);
  EXPECT_THROW(feature_kind_from_name("bogus"), std::invalid_argument);
}

TEST(FeatureSchemaTest, ConstructorRejectsInvalidLayouts) {
  auto spec = [](const char* name, FeatureKind kind, FeatureRole role) {
    FeatureSpec f;
    f.name = name;
    f.unit = "1";
    f.kind = kind;
    f.role = role;
    return f;
  };
  // No state dimension.
  EXPECT_THROW(FeatureSchema("bad", {spec("a", FeatureKind::kDisturbance, FeatureRole::kWind)}),
               std::invalid_argument);
  // Duplicate roles.
  EXPECT_THROW(FeatureSchema("bad", {spec("a", FeatureKind::kState, FeatureRole::kZoneTemp),
                                     spec("b", FeatureKind::kDisturbance, FeatureRole::kZoneTemp)}),
               std::invalid_argument);
  // Two state dimensions.
  EXPECT_THROW(FeatureSchema("bad", {spec("a", FeatureKind::kState, FeatureRole::kZoneTemp),
                                     spec("b", FeatureKind::kState, FeatureRole::kOutdoorTemp)}),
               std::invalid_argument);
}

TEST(FeatureSchemaTest, TimeOfDayEncodingWrapsDaily) {
  const auto [s0, c0] = time_of_day_encoding(0);
  EXPECT_DOUBLE_EQ(s0, 0.0);
  EXPECT_DOUBLE_EQ(c0, 1.0);
  // 6:00 (a quarter day at 15-minute steps) is a quarter turn.
  const auto [s6, c6] = time_of_day_encoding(24);
  EXPECT_NEAR(s6, 1.0, 1e-12);
  EXPECT_NEAR(c6, 0.0, 1e-12);
  // Wraps bit-identically at the day boundary.
  const auto a = time_of_day_encoding(7);
  const auto b = time_of_day_encoding(7 + 96);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace verihvac::env
