#include "envlib/observation.hpp"

#include <gtest/gtest.h>

namespace verihvac::env {
namespace {

TEST(ObservationTest, VectorLayoutMatchesTable1) {
  Observation obs;
  obs.zone_temp_c = 21.5;
  obs.weather.outdoor_temp_c = -3.0;
  obs.weather.humidity_pct = 65.0;
  obs.weather.wind_mps = 4.5;
  obs.weather.solar_wm2 = 120.0;
  obs.occupants = 11.0;
  const auto x = obs.to_vector();
  ASSERT_EQ(x.size(), kInputDims);
  EXPECT_DOUBLE_EQ(x[kZoneTemp], 21.5);
  EXPECT_DOUBLE_EQ(x[kOutdoorTemp], -3.0);
  EXPECT_DOUBLE_EQ(x[kHumidity], 65.0);
  EXPECT_DOUBLE_EQ(x[kWind], 4.5);
  EXPECT_DOUBLE_EQ(x[kSolar], 120.0);
  EXPECT_DOUBLE_EQ(x[kOccupancy], 11.0);
}

TEST(ObservationTest, ZoneTempIsDimensionZero) {
  // Algorithm 1 relies on this: the verification criteria constrain input
  // dimension 0.
  EXPECT_EQ(kZoneTemp, 0u);
}

TEST(ObservationTest, FromVectorRoundTrip) {
  const std::vector<double> x = {20.0, 5.0, 50.0, 2.0, 300.0, 8.0};
  const Observation obs = Observation::from_vector(x);
  EXPECT_EQ(obs.to_vector(), x);
}

TEST(ObservationTest, FromVectorDoesNotRoundTripTemporalFields) {
  // Documented contract: the baseline 6-dim layout does not encode the
  // temporal fields, so from_vector leaves them at their defaults — even
  // when the vector came from an observation that had them set. Callers
  // that need the temporal fields restored must go through
  // FeatureSchema::to_observation on a schema that encodes them.
  Observation obs;
  obs.zone_temp_c = 21.0;
  obs.step = 30;
  obs.hour_of_day = 7.5;
  const auto [s, c] = time_of_day_encoding(obs.step);
  obs.hour_sin = s;
  obs.hour_cos = c;
  obs.occupants_ahead = 9.0;
  const Observation back = Observation::from_vector(obs.to_vector());
  EXPECT_EQ(back.zone_temp_c, 21.0);
  EXPECT_EQ(back.step, 0u);
  EXPECT_EQ(back.hour_of_day, 0.0);
  EXPECT_EQ(back.hour_sin, 0.0);
  EXPECT_EQ(back.hour_cos, 1.0);
  EXPECT_EQ(back.occupants_ahead, 0.0);
}

TEST(ObservationTest, FromVectorRejectsWrongSize) {
  EXPECT_THROW(Observation::from_vector({1.0, 2.0}), std::invalid_argument);
}

TEST(ObservationTest, DimNamesAreUniqueAndComplete) {
  const auto& names = input_dim_names();
  ASSERT_EQ(names.size(), kInputDims);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  }
  EXPECT_EQ(names[kZoneTemp], "zone_temp_c");
}

}  // namespace
}  // namespace verihvac::env
