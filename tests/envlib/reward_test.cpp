#include "envlib/reward.hpp"

#include <gtest/gtest.h>

namespace verihvac::env {
namespace {

TEST(ComfortTest, SeasonalRangesMatchPaper) {
  const ComfortRange winter = winter_comfort();
  EXPECT_DOUBLE_EQ(winter.lo, 20.0);
  EXPECT_DOUBLE_EQ(winter.hi, 23.5);
  const ComfortRange summer = summer_comfort();
  EXPECT_DOUBLE_EQ(summer.lo, 23.0);
  EXPECT_DOUBLE_EQ(summer.hi, 26.0);
}

TEST(ComfortTest, ContainsAndMedian) {
  const ComfortRange c = winter_comfort();
  EXPECT_TRUE(c.contains(20.0));
  EXPECT_TRUE(c.contains(23.5));
  EXPECT_FALSE(c.contains(19.99));
  EXPECT_FALSE(c.contains(23.51));
  EXPECT_DOUBLE_EQ(c.median(), 21.75);
}

TEST(EnergyProxyTest, FullSetbackIsZero) {
  const RewardConfig cfg;
  EXPECT_DOUBLE_EQ(energy_proxy(cfg, sim::SetpointPair{15.0, 30.0}), 0.0);
}

TEST(EnergyProxyTest, L1DistanceFromOffSetpoints) {
  const RewardConfig cfg;
  // |21 - 15| + |30 - 24| = 12.
  EXPECT_DOUBLE_EQ(energy_proxy(cfg, sim::SetpointPair{21.0, 24.0}), 12.0);
}

TEST(ComfortPenaltyTest, ZeroInsideBand) {
  const ComfortRange c = winter_comfort();
  EXPECT_DOUBLE_EQ(comfort_penalty(c, 21.0), 0.0);
  EXPECT_DOUBLE_EQ(comfort_penalty(c, 20.0), 0.0);
}

TEST(ComfortPenaltyTest, LinearOutsideBand) {
  const ComfortRange c = winter_comfort();
  EXPECT_DOUBLE_EQ(comfort_penalty(c, 18.0), 2.0);
  EXPECT_DOUBLE_EQ(comfort_penalty(c, 25.5), 2.0);
}

TEST(RewardTest, OccupiedWeightsComfortHeavily) {
  const RewardConfig cfg;
  // Same comfort violation, different setpoint energy: occupied reward is
  // dominated by the comfort term (w_e = 0.01).
  const double cold = reward(cfg, 18.0, sim::SetpointPair{15.0, 30.0}, /*occupied=*/true);
  const double warm_energy =
      reward(cfg, 21.0, sim::SetpointPair{23.0, 21.0}, /*occupied=*/true);
  EXPECT_LT(cold, warm_energy);  // violating comfort is much worse
}

TEST(RewardTest, UnoccupiedIgnoresComfort) {
  const RewardConfig cfg;
  // w_e = 1: comfort term has weight 0.
  const double r_cold = reward(cfg, 10.0, sim::SetpointPair{15.0, 30.0}, false);
  const double r_fine = reward(cfg, 21.0, sim::SetpointPair{15.0, 30.0}, false);
  EXPECT_DOUBLE_EQ(r_cold, r_fine);
  EXPECT_DOUBLE_EQ(r_cold, 0.0);  // full setback = zero energy proxy
}

TEST(RewardTest, UnoccupiedPenalizesEnergy) {
  const RewardConfig cfg;
  const double setback = reward(cfg, 21.0, sim::SetpointPair{15.0, 30.0}, false);
  const double heating = reward(cfg, 21.0, sim::SetpointPair{22.0, 30.0}, false);
  EXPECT_GT(setback, heating);
}

TEST(RewardTest, RewardIsNeverPositive) {
  const RewardConfig cfg;
  for (double temp : {15.0, 20.0, 22.0, 26.0}) {
    for (bool occ : {true, false}) {
      EXPECT_LE(reward(cfg, temp, sim::SetpointPair{21.0, 24.0}, occ), 0.0);
    }
  }
}

/// Eq. 2 structural sweep: reward decreases monotonically as the zone
/// temperature moves away from the comfort band (occupied).
class RewardMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(RewardMonotoneTest, ColderIsWorseBelowBand) {
  const RewardConfig cfg;
  const double base = GetParam();
  const sim::SetpointPair a{21.0, 24.0};
  const double r1 = reward(cfg, base, a, true);
  const double r2 = reward(cfg, base - 1.0, a, true);
  EXPECT_GT(r1, r2);
}

INSTANTIATE_TEST_SUITE_P(BelowBand, RewardMonotoneTest,
                         ::testing::Values(19.9, 19.0, 18.0, 16.0));

}  // namespace
}  // namespace verihvac::env
