#include "envlib/multizone_env.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "envlib/multizone_metrics.hpp"
#include "weather/climate.hpp"

namespace verihvac::env {
namespace {

EnvConfig small_config() {
  EnvConfig config;
  config.climate = weather::pittsburgh();
  config.days = 2;
  return config;
}

std::vector<sim::SetpointPair> uniform_actions(std::size_t zones, sim::SetpointPair pair) {
  return std::vector<sim::SetpointPair>(zones, pair);
}

TEST(MultiZoneEnvTest, ResetReturnsOneObservationPerZone) {
  MultiZoneEnv env(small_config());
  const auto obs = env.reset();
  EXPECT_EQ(obs.size(), env.zone_count());
  EXPECT_EQ(env.zone_count(), 5u);  // the paper's five-zone plant
  for (const auto& o : obs) {
    EXPECT_DOUBLE_EQ(o.zone_temp_c, small_config().initial_temp_c);
    EXPECT_EQ(o.step, 0u);
  }
}

TEST(MultiZoneEnvTest, StepValidatesActionCount) {
  MultiZoneEnv env(small_config());
  env.reset();
  EXPECT_THROW(env.step(uniform_actions(2, {20.0, 24.0})), std::invalid_argument);
}

TEST(MultiZoneEnvTest, StepAfterDoneThrows) {
  EnvConfig config = small_config();
  MultiZoneEnv env(config);
  env.reset();
  const auto actions = uniform_actions(env.zone_count(), {20.0, 24.0});
  for (std::size_t i = 0; i < env.horizon_steps(); ++i) env.step(actions);
  EXPECT_THROW(env.step(actions), std::logic_error);
}

TEST(MultiZoneEnvTest, ZonesShareWeatherButKeepOwnTemperatures) {
  MultiZoneEnv env(small_config());
  env.reset();
  // Heat one zone hard, set the others back: temperatures must diverge
  // while weather stays identical across observations.
  std::vector<sim::SetpointPair> actions(env.zone_count(), sim::SetpointPair{15.0, 30.0});
  actions[0] = {23.0, 30.0};
  MultiZoneStepOutcome outcome;
  for (int i = 0; i < 8; ++i) outcome = env.step(actions);
  EXPECT_GT(outcome.observations[0].zone_temp_c, outcome.observations[2].zone_temp_c);
  for (std::size_t z = 1; z < env.zone_count(); ++z) {
    EXPECT_DOUBLE_EQ(outcome.observations[z].weather.outdoor_temp_c,
                     outcome.observations[0].weather.outdoor_temp_c);
  }
}

TEST(MultiZoneEnvTest, PerZoneRewardsAndViolationsAreReported) {
  MultiZoneEnv env(small_config());
  env.reset();
  const auto outcome = env.step(uniform_actions(env.zone_count(), {20.0, 23.5}));
  EXPECT_EQ(outcome.rewards.size(), env.zone_count());
  EXPECT_EQ(outcome.comfort_violations.size(), env.zone_count());
  EXPECT_GE(outcome.energy_kwh, 0.0);
}

TEST(MultiZoneEnvTest, HeatingEveryZoneUsesMoreEnergyThanSetback) {
  MultiZoneEnv heat_env(small_config());
  heat_env.reset();
  MultiZoneEnv coast_env(small_config());
  coast_env.reset();
  double heat_kwh = 0.0;
  double coast_kwh = 0.0;
  for (int i = 0; i < 96; ++i) {
    heat_kwh +=
        heat_env.step(uniform_actions(heat_env.zone_count(), {23.0, 30.0})).energy_kwh;
    coast_kwh +=
        coast_env.step(uniform_actions(coast_env.zone_count(), {15.0, 30.0})).energy_kwh;
  }
  EXPECT_GT(heat_kwh, coast_kwh);
}

TEST(MultiZoneEnvTest, ForecastMatchesSingleZoneConvention) {
  EnvConfig config = small_config();
  MultiZoneEnv multi(config);
  BuildingEnv single(config);
  multi.reset();
  single.reset();
  const auto f_multi = multi.forecast(6);
  const auto f_single = single.forecast(6);
  ASSERT_EQ(f_multi.size(), f_single.size());
  for (std::size_t k = 0; k < f_multi.size(); ++k) {
    EXPECT_DOUBLE_EQ(f_multi[k].weather.outdoor_temp_c, f_single[k].weather.outdoor_temp_c);
    EXPECT_DOUBLE_EQ(f_multi[k].occupants, f_single[k].occupants);
  }
}

TEST(MultiZoneMetricsTest, RejectsZeroZonesAndMismatchedAdds) {
  EXPECT_THROW(MultiZoneMetrics(0), std::invalid_argument);
  MultiZoneMetrics metrics(5);
  MultiZoneStepOutcome bad;
  bad.comfort_violations = {false, true};  // wrong zone count
  EXPECT_THROW(metrics.add(bad), std::invalid_argument);
}

TEST(MultiZoneMetricsTest, AccumulatesPerZoneViolations) {
  MultiZoneMetrics metrics(3);
  MultiZoneStepOutcome step;
  step.comfort_violations = {true, false, false};
  step.rewards = {-1.0, -0.5, 0.0};
  step.energy_kwh = 2.0;
  step.occupied = true;
  metrics.add(step);
  step.comfort_violations = {true, true, false};
  metrics.add(step);
  MultiZoneStepOutcome night = step;
  night.occupied = false;
  night.comfort_violations = {true, true, true};  // unoccupied: not counted
  metrics.add(night);

  EXPECT_EQ(metrics.steps(), 3u);
  EXPECT_EQ(metrics.occupied_steps(), 2u);
  EXPECT_DOUBLE_EQ(metrics.violation_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(metrics.violation_rate(1), 0.5);
  EXPECT_DOUBLE_EQ(metrics.violation_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_violation_rate(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.total_energy_kwh(), 6.0);
}

TEST(MultiZoneMetricsTest, NoOccupiedStepsMeansZeroViolationRate) {
  MultiZoneMetrics metrics(2);
  EXPECT_DOUBLE_EQ(metrics.violation_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_violation_rate(), 0.0);
}

}  // namespace
}  // namespace verihvac::env
