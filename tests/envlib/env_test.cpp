#include "envlib/env.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace verihvac::env {
namespace {

EnvConfig short_config(int days = 2) {
  EnvConfig cfg;
  cfg.days = days;
  cfg.weather_seed = 42;
  return cfg;
}

TEST(EnvTest, ResetGivesInitialObservation) {
  BuildingEnv env(short_config());
  const Observation obs = env.reset();
  EXPECT_DOUBLE_EQ(obs.zone_temp_c, env.config().initial_temp_c);
  EXPECT_EQ(obs.step, 0u);
  EXPECT_DOUBLE_EQ(obs.hour_of_day, 0.0);
}

TEST(EnvTest, EpisodeLengthMatchesDays) {
  BuildingEnv env(short_config(3));
  EXPECT_EQ(env.horizon_steps(), static_cast<std::size_t>(3 * kStepsPerDay));
  env.reset();
  std::size_t steps = 0;
  bool done = false;
  while (!done) {
    done = env.step(sim::SetpointPair{20.0, 24.0}).done;
    ++steps;
  }
  EXPECT_EQ(steps, env.horizon_steps());
}

TEST(EnvTest, StepAfterDoneThrows) {
  BuildingEnv env(short_config(1));
  env.reset();
  for (std::size_t i = 0; i < env.horizon_steps(); ++i) {
    env.step(sim::SetpointPair{20.0, 24.0});
  }
  EXPECT_THROW(env.step(sim::SetpointPair{20.0, 24.0}), std::logic_error);
}

TEST(EnvTest, StepBeforeResetThrows) {
  BuildingEnv env(short_config());
  EXPECT_THROW(env.step(sim::SetpointPair{20.0, 24.0}), std::logic_error);
}

TEST(EnvTest, DeterministicEpisodes) {
  BuildingEnv env1(short_config());
  BuildingEnv env2(short_config());
  env1.reset();
  env2.reset();
  for (int i = 0; i < 50; ++i) {
    const auto o1 = env1.step(sim::SetpointPair{21.0, 24.0});
    const auto o2 = env2.step(sim::SetpointPair{21.0, 24.0});
    EXPECT_DOUBLE_EQ(o1.observation.zone_temp_c, o2.observation.zone_temp_c);
    EXPECT_DOUBLE_EQ(o1.reward, o2.reward);
    EXPECT_DOUBLE_EQ(o1.energy_kwh, o2.energy_kwh);
  }
}

TEST(EnvTest, ResetRestartsEpisodeExactly) {
  BuildingEnv env(short_config());
  env.reset();
  std::vector<double> first;
  for (int i = 0; i < 20; ++i) {
    first.push_back(env.step(sim::SetpointPair{20.0, 24.0}).observation.zone_temp_c);
  }
  env.reset();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(env.step(sim::SetpointPair{20.0, 24.0}).observation.zone_temp_c,
                     first[static_cast<std::size_t>(i)]);
  }
}

TEST(EnvTest, OccupancyFlagFollowsSchedule) {
  BuildingEnv env(short_config(1));  // day 0 is a Friday
  env.reset();
  // Steps 0..31 are midnight..8:00 (unoccupied).
  auto outcome = env.step(sim::SetpointPair{15.0, 30.0});
  EXPECT_FALSE(outcome.occupied);
  // Fast-forward to 10am.
  for (int i = 1; i < 10 * kStepsPerHour; ++i) {
    outcome = env.step(sim::SetpointPair{15.0, 30.0});
  }
  EXPECT_TRUE(outcome.occupied);
}

TEST(EnvTest, ForecastMatchesFuture) {
  BuildingEnv env(short_config());
  env.reset();
  const auto forecast = env.forecast(5);
  ASSERT_EQ(forecast.size(), 5u);
  // Forecast entry k corresponds to the disturbances at step t+k.
  for (std::size_t k = 0; k < 5; ++k) {
    const Disturbance d = env.disturbance_at(k);
    EXPECT_DOUBLE_EQ(forecast[k].weather.outdoor_temp_c, d.weather.outdoor_temp_c);
  }
}

TEST(EnvTest, ForecastClampsAtEpisodeEnd) {
  BuildingEnv env(short_config(1));
  env.reset();
  for (std::size_t i = 0; i + 1 < env.horizon_steps(); ++i) {
    env.step(sim::SetpointPair{20.0, 24.0});
  }
  const auto forecast = env.forecast(10);
  ASSERT_EQ(forecast.size(), 10u);
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(forecast[k].weather.outdoor_temp_c,
                     forecast[0].weather.outdoor_temp_c);
  }
}

TEST(EnvTest, ComfortViolationFlagTracksRange) {
  EnvConfig cfg = short_config();
  cfg.initial_temp_c = 17.0;  // start too cold
  BuildingEnv env(cfg);
  env.reset();
  const auto outcome = env.step(sim::SetpointPair{15.0, 30.0});
  EXPECT_TRUE(outcome.comfort_violation);
}

TEST(EnvTest, HeatingActionWarmsZoneVsSetback) {
  BuildingEnv heat_env(short_config());
  BuildingEnv setback_env(short_config());
  heat_env.reset();
  setback_env.reset();
  double heat_temp = 0.0;
  double setback_temp = 0.0;
  for (int i = 0; i < 32; ++i) {
    heat_temp = heat_env.step(sim::SetpointPair{23.0, 30.0}).observation.zone_temp_c;
    setback_temp = setback_env.step(sim::SetpointPair{15.0, 30.0}).observation.zone_temp_c;
  }
  EXPECT_GT(heat_temp, setback_temp + 0.5);
}

TEST(EnvTest, WeatherSeriesExposed) {
  BuildingEnv env(short_config());
  EXPECT_EQ(env.weather_series().size(), env.horizon_steps());
}

}  // namespace
TEST(EnvToleranceTest, DeadBandAbsorbsBoundaryRiding) {
  // Hold the heating setpoint exactly at the comfort floor. The thermostat
  // settles ON the setpoint, so step-end samples graze [z_lo - drift, z_lo]
  // (DESIGN.md §5.16). With a zero dead-band that edge-riding inflates the
  // violation rate; the default 0.05 degC dead-band must absorb it while
  // leaving the reward untouched.
  const auto run_with_tolerance = [](double tol) {
    EnvConfig config;
    config.days = 2;
    config.comfort_violation_tolerance_c = tol;
    BuildingEnv env(config);
    env.reset();
    const double z_lo = config.reward.comfort.lo;
    std::size_t occupied = 0;
    std::size_t violations = 0;
    for (std::size_t i = 0; i < env.horizon_steps(); ++i) {
      const auto out = env.step({z_lo, config.reward.comfort.hi});
      if (!out.occupied) continue;
      ++occupied;
      if (out.comfort_violation) ++violations;
    }
    return occupied == 0 ? 0.0
                         : static_cast<double>(violations) / static_cast<double>(occupied);
  };
  const double strict = run_with_tolerance(0.0);
  const double dead_band = run_with_tolerance(0.05);
  EXPECT_GT(strict, 0.3);     // edge-riding dominates under the strict flag
  EXPECT_LT(dead_band, 0.1);  // and disappears inside the dead-band
  EXPECT_LE(dead_band, strict);
}

TEST(EnvToleranceTest, RealExcursionsStillFlagged) {
  EnvConfig config;
  config.days = 1;
  config.comfort_violation_tolerance_c = 0.05;
  BuildingEnv env(config);
  env.reset();
  // Full setback in a Pittsburgh January: the zone falls degrees below
  // comfort during occupied hours; the dead-band must not mask that.
  std::size_t occupied_violations = 0;
  for (std::size_t i = 0; i < env.horizon_steps(); ++i) {
    const auto out = env.step({15.0, 30.0});
    if (out.occupied && out.comfort_violation) ++occupied_violations;
  }
  EXPECT_GT(occupied_violations, 10u);
}

}  // namespace verihvac::env
