#include "envlib/metrics.hpp"

#include <gtest/gtest.h>

namespace verihvac::env {
namespace {

StepOutcome make_outcome(bool occupied, bool violation, double energy, double reward = -1.0) {
  StepOutcome o;
  o.occupied = occupied;
  o.comfort_violation = violation;
  o.energy_kwh = energy;
  o.reward = reward;
  return o;
}

TEST(MetricsTest, EmptyMetricsAreZero) {
  EpisodeMetrics m;
  EXPECT_EQ(m.steps(), 0u);
  EXPECT_DOUBLE_EQ(m.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.comfort_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m.total_energy_kwh(), 0.0);
  EXPECT_DOUBLE_EQ(m.energy_efficiency_score(), 0.0);
}

TEST(MetricsTest, ViolationRateCountsOnlyOccupiedSteps) {
  EpisodeMetrics m;
  m.add(make_outcome(true, true, 1.0));    // occupied violation
  m.add(make_outcome(true, false, 1.0));   // occupied ok
  m.add(make_outcome(false, true, 1.0));   // unoccupied violation — ignored
  m.add(make_outcome(false, false, 1.0));
  EXPECT_EQ(m.steps(), 4u);
  EXPECT_EQ(m.occupied_steps(), 2u);
  EXPECT_DOUBLE_EQ(m.violation_rate(), 0.5);
  EXPECT_DOUBLE_EQ(m.comfort_rate(), 0.5);
}

TEST(MetricsTest, EnergyAndRewardAccumulate) {
  EpisodeMetrics m;
  m.add(make_outcome(true, false, 1.5, -2.0));
  m.add(make_outcome(false, false, 2.5, -3.0));
  EXPECT_DOUBLE_EQ(m.total_energy_kwh(), 4.0);
  EXPECT_DOUBLE_EQ(m.total_reward(), -5.0);
}

TEST(MetricsTest, EfficiencyScoreMatchesFig6Definition) {
  EpisodeMetrics m;
  // comfort rate 0.8, energy 500 kWh -> 0.8/500*1000 = 1.6 (the Fig. 6 scale).
  for (int i = 0; i < 8; ++i) m.add(make_outcome(true, false, 62.5));
  for (int i = 0; i < 2; ++i) m.add(make_outcome(true, true, 0.0));
  EXPECT_DOUBLE_EQ(m.total_energy_kwh(), 500.0);
  EXPECT_DOUBLE_EQ(m.comfort_rate(), 0.8);
  EXPECT_DOUBLE_EQ(m.energy_efficiency_score(), 1.6);
}

TEST(MetricsTest, AllOccupiedViolationsGiveRateOne) {
  EpisodeMetrics m;
  for (int i = 0; i < 5; ++i) m.add(make_outcome(true, true, 1.0));
  EXPECT_DOUBLE_EQ(m.violation_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m.comfort_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.energy_efficiency_score(), 0.0);
}

}  // namespace
}  // namespace verihvac::env
